"""The simulated distributed-memory machine (paper Section 2.10).

Bundles per-node local memories, the message network, the scheduler and
statistics into one object; provides a :class:`NodeContext` handle that
generated node programs use for their sends/receives/updates.

This is the repo's substitute for a physical message-passing machine (see
DESIGN.md): it exposes exactly the surface the paper's generated programs
assume — non-blocking ``send``, blocking ``recv`` (by yielding a
:class:`~repro.machine.scheduler.Recv`), local memories addressed with the
decomposition's ``local`` function — and observes every functional
property the paper's claims are about.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

import numpy as np

from ..decomp.base import Decomposition
from .channels import LatencyModel, Network
from .memory import LocalMemory, gather_global, scatter_global
from .scheduler import Barrier, Irecv, NodeGen, Probe, Recv, RecvFuture, \
    Yield, run_spmd
from .stats import MachineStats

__all__ = ["NodeContext", "DistributedMachine"]


class NodeContext:
    """One node's view of the machine, passed to node programs."""

    def __init__(self, p: int, machine: "DistributedMachine"):
        self.p = p
        self.machine = machine
        self.mem = machine.memories[p]
        self.stats = machine.stats[p]

    # -- communication -----------------------------------------------------

    def send(self, dst: int, tag: Hashable, payload: Any) -> None:
        """Non-blocking send (paper's ``send(proc, data)``)."""
        self.machine.network.send(self.p, dst, tag, payload,
                                  now=self.stats.vtime)
        self.stats.sends += 1
        n = payload.size if isinstance(payload, np.ndarray) else 1
        self.stats.elements_sent += n

    def recv(self, src: int, tag: Hashable) -> Recv:
        """Blocking receive *request* — ``value = yield ctx.recv(src, tag)``."""
        return Recv(src, tag)

    def irecv(self, src: int, tag: Hashable) -> Irecv:
        """Non-blocking receive *request* — ``handle = yield ctx.irecv(...)``
        resumes immediately with a :class:`RecvFuture`."""
        return Irecv(src, tag)

    def probe(self, handles) -> Probe:
        """Wait-any *request* over posted handles —
        ``done = yield ctx.probe(handles)``."""
        return Probe(handles)

    def barrier(self) -> Barrier:
        return Barrier()

    def charge_elements(self, n: int) -> None:
        """Advance this node's virtual clock by *n* computed elements
        (no-op without a latency model)."""
        model = self.machine.model
        if model is not None and n:
            self.stats.vtime += n * model.t_element

    def note_received(self, payload: Any) -> Any:
        """Book-keeping hook generated programs call on each received value."""
        n = payload.size if isinstance(payload, np.ndarray) else 1
        self.stats.elements_received += n
        return payload

    # -- local data ----------------------------------------------------------

    def array(self, name: str) -> np.ndarray:
        return self.mem[name]

    def update(self, name: str, slot: int, value) -> None:
        self.mem[name][slot] = value
        self.stats.local_updates += 1


class DistributedMachine:
    """``pmax`` nodes, local memories, a network, and a scheduler."""

    def __init__(self, pmax: int, model: Optional[LatencyModel] = None):
        if pmax < 1:
            raise ValueError("pmax must be >= 1")
        self.pmax = pmax
        self.model = model
        self.memories: List[LocalMemory] = [LocalMemory(p) for p in range(pmax)]
        self.network = Network(pmax, model=model)
        self.stats = MachineStats.for_nodes(pmax)
        self.decomps: Dict[str, Decomposition] = {}

    # -- data placement -----------------------------------------------------

    def place(self, name: str, global_array: np.ndarray, d: Decomposition) -> None:
        """Distribute a global array onto the nodes under decomposition *d*."""
        if d.pmax != self.pmax:
            raise ValueError(
                f"decomposition pmax={d.pmax} != machine pmax={self.pmax}"
            )
        self.decomps[name] = d
        scatter_global(name, np.asarray(global_array, dtype=np.float64), d,
                       self.memories)

    def collect(self, name: str) -> np.ndarray:
        """Gather the global view of a placed array."""
        return gather_global(name, self.decomps[name], self.memories)

    def decomposition(self, name: str) -> Decomposition:
        return self.decomps[name]

    # -- execution -----------------------------------------------------------

    def contexts(self) -> List[NodeContext]:
        return [NodeContext(p, self) for p in range(self.pmax)]

    def run(
        self,
        make_program: Callable[[NodeContext], NodeGen],
        check_drained: bool = True,
        trace: Optional[list] = None,
    ) -> None:
        """Instantiate ``make_program`` per node and run to completion.

        ``check_drained`` asserts no messages were left undelivered — a
        generated-code correctness check (every send must be matched).
        Pass a list as *trace* to collect scheduler
        :class:`~repro.machine.scheduler.TraceEvent` records.
        """
        programs = [make_program(ctx) for ctx in self.contexts()]
        run_spmd(programs, self.network, self.stats, trace=trace)
        if check_drained:
            self.network.drain_check()
