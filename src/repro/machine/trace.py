"""Trace analysis: pipeline overlap and activity timelines.

A scheduler trace (list of :class:`~repro.machine.scheduler.TraceEvent`)
records *when* (in logical scheduler rounds) each node progressed.  From
it we derive:

* per-node activity spans (first/last active round),
* the **overlap factor** — mean number of simultaneously-active nodes
  over the makespan, the quantity that distinguishes a true pipeline
  (DOACROSS) from serialized execution,
* a text timeline (one row per node) for eyeballing runs.

Logical rounds are a scheduling clock, not wall time; the *shape* of the
timeline (who overlaps whom) is exactly what the simulator defines.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from .scheduler import TraceEvent

__all__ = ["activity_spans", "overlap_factor", "render_timeline"]


def activity_spans(trace: Sequence[TraceEvent]) -> Dict[int, Tuple[int, int]]:
    """Per node: (first round active, last round active)."""
    spans: Dict[int, Tuple[int, int]] = {}
    for ev in trace:
        if ev.kind == "retire":
            continue
        lo, hi = spans.get(ev.p, (ev.round, ev.round))
        spans[ev.p] = (min(lo, ev.round), max(hi, ev.round))
    return spans


def overlap_factor(trace: Sequence[TraceEvent]) -> float:
    """Mean number of nodes active per round with at least one event.

    1.0 = fully serialized (one node at a time); pmax = perfectly
    parallel.  DOACROSS pipelines land in between, and higher is better.
    """
    per_round: Dict[int, set] = defaultdict(set)
    for ev in trace:
        if ev.kind != "retire":
            per_round[ev.round].add(ev.p)
    if not per_round:
        return 0.0
    return sum(len(s) for s in per_round.values()) / len(per_round)


def render_timeline(
    trace: Sequence[TraceEvent], pmax: int, width: int = 72
) -> str:
    """ASCII activity chart: one row per node, ``#`` where it progressed.

    Rounds are rescaled into *width* buckets for long runs.
    """
    if not trace:
        return "(empty trace)"
    max_round = max(ev.round for ev in trace)
    scale = max(1, (max_round + 1 + width - 1) // width)
    cols = (max_round + 1 + scale - 1) // scale
    grid = [[" "] * cols for _ in range(pmax)]
    for ev in trace:
        if ev.kind == "retire":
            continue
        c = ev.round // scale
        mark = "B" if ev.kind == "barrier" else "#"
        if grid[ev.p][c] != "#":
            grid[ev.p][c] = mark
    lines = [f"rounds 0..{max_round} (x{scale} per column)"]
    for p in range(pmax):
        lines.append(f"p{p:<3d} |" + "".join(grid[p]) + "|")
    return "\n".join(lines)
