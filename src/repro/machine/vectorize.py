"""Vectorized segment executor.

The Table I generation functions hand every node its membership sets as
closed-form strided segments.  The scalar templates walk those segments
element by element in Python; this module executes each *whole
enumeration* as NumPy array operations instead — one strided index
vector per loop axis, placement functions applied as array arithmetic
(``Decomposition.proc_array``/``local_array``), the clause body evaluated
element-wise over the full membership at once, and communication batched
into one message per (read, peer) pair.

Alignment invariant: every membership index vector is sorted ascending
and Cartesian products are taken in lexicographic (row-major) order, so
two nodes enumerating the same index set walk it identically.  That is
what lets the sender transmit a bare value vector — the receiver
reconstructs the positions from its own enumeration, no indices on the
wire.

The executor is selected with ``backend="vector"`` on the template
runners (:func:`repro.codegen.shared_tmpl.run_shared` and friends) and
drives everything off the unified :class:`~repro.pipeline.ir.PlanIR`.
Sequential (``•``) clauses keep the scalar path — their semantics are a
serial chain, which is exactly what vectorization removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.clause import Ordering
from ..core.expr import BinOp, Const, LoopIndex, Ref, UnOp
from ..decomp.multidim import GridDecomposition
from ..pipeline.ir import AccessIR, PlanIR, access_spec
from .distributed import DistributedMachine, NodeContext
from .ndmemory import scatter_global_nd
from .shared import SharedMachine

__all__ = [
    "VEC_OPS",
    "VEC_UNARY",
    "apply_ifunc",
    "eval_expr_vec",
    "run_shared_vector",
    "make_vector_node_program",
    "run_distributed_vector",
    "make_overlap_node_program",
    "run_distributed_overlap",
]

#: element-wise operator table (the ndarray-safe counterpart of
#: ``repro.core.expr.OPS``: builtin min/max and short-circuit and/or do
#: not broadcast).
VEC_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
    "div": np.floor_divide,
    "mod": np.mod,
    "min": np.minimum,
    "max": np.maximum,
    ">": np.greater,
    ">=": np.greater_equal,
    "<": np.less,
    "<=": np.less_equal,
    "=": np.equal,
    "!=": np.not_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}

VEC_UNARY = {
    "-": np.negative,
    "not": np.logical_not,
    "abs": np.absolute,
}


def apply_ifunc(f, ivec: np.ndarray) -> np.ndarray:
    """Apply index function *f* over an int64 vector.

    Affine/modular/composed functions broadcast as plain arithmetic; an
    opaque callable that cannot take an ndarray falls back to an
    element-wise sweep (still correct, just not fast).
    """
    try:
        out = f(ivec)
    except Exception:
        out = None
    if isinstance(out, np.ndarray) and out.shape == ivec.shape:
        return out.astype(np.int64, copy=False)
    if np.isscalar(out) and ivec.size:
        # e.g. ConstantF: one value for every index
        return np.full(ivec.shape, int(out), dtype=np.int64)
    return np.fromiter(
        (f(int(i)) for i in ivec), dtype=np.int64, count=ivec.size
    )


def eval_expr_vec(expr, idx_vecs: List[np.ndarray], fetch):
    """Evaluate an expression tree element-wise over the index vectors.

    *fetch* maps each :class:`Ref` to its value vector (global gather in
    shared memory, pre-received message vector in distributed memory).
    """
    if isinstance(expr, Ref):
        return fetch(expr)
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, LoopIndex):
        return idx_vecs[expr.dim]
    if isinstance(expr, BinOp):
        return VEC_OPS[expr.op](
            eval_expr_vec(expr.left, idx_vecs, fetch),
            eval_expr_vec(expr.right, idx_vecs, fetch),
        )
    if isinstance(expr, UnOp):
        return VEC_UNARY[expr.op](eval_expr_vec(expr.operand, idx_vecs, fetch))
    raise TypeError(f"cannot evaluate expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# membership / placement over index vectors
# ---------------------------------------------------------------------------

def _member_vecs(ir: PlanIR, acc: AccessIR, p: int) -> List[np.ndarray]:
    """Per-loop-dimension index vectors whose implicit Cartesian product
    (row-major, flattened) is the access's membership set on node *p*.

    Returned flattened: ``len(loop_bounds)`` vectors of equal length, one
    entry per member index tuple, in lexicographic order.
    """
    coord = acc.grid_coord(p)
    per_dim: List[np.ndarray] = []
    for d, (lo, hi) in enumerate(ir.loop_bounds):
        if acc.axes and d in acc.dims:
            k = acc.dims.index(d)
            per_dim.append(acc.axes[k].access.enumerate(coord[k]).index_array())
        else:
            per_dim.append(np.arange(lo, hi + 1, dtype=np.int64))
    if len(per_dim) == 1:
        return per_dim
    meshes = np.meshgrid(*per_dim, indexing="ij")
    return [m.ravel() for m in meshes]


def _array_vecs(acc: AccessIR, idx_vecs: List[np.ndarray]) -> List[np.ndarray]:
    """The access's array index vectors ``f_k(i_{dims[k]})``."""
    return [apply_ifunc(f, idx_vecs[d]) for d, f in zip(acc.dims, acc.funcs)]


def _proc_linear(acc: AccessIR, idx_vecs: List[np.ndarray]) -> np.ndarray:
    """Owning (linear) processor of every member index tuple."""
    ai = _array_vecs(acc, idx_vecs)
    dec = acc.dec
    if isinstance(dec, GridDecomposition):
        out = np.zeros(ai[0].shape, dtype=np.int64)
        for axis_dec, g, a in zip(dec.dims, dec.grid_shape, ai):
            out = out * g + axis_dec.proc_array(a)
        return out
    return dec.proc_array(ai[0])


def _local_key(acc: AccessIR, idx_vecs: List[np.ndarray]):
    """Local-buffer index (vector or tuple of vectors) of every member."""
    ai = _array_vecs(acc, idx_vecs)
    dec = acc.dec
    if isinstance(dec, GridDecomposition):
        return tuple(
            axis_dec.local_array(a) for axis_dec, a in zip(dec.dims, ai)
        )
    if acc.replicated:
        return tuple(ai) if len(ai) > 1 else ai[0]
    return dec.local_array(ai[0])


def _gather_local(mem, acc: AccessIR, idx_vecs: List[np.ndarray]) -> np.ndarray:
    """Fetch the access's values from a node-local buffer."""
    key = _local_key(acc, idx_vecs)
    return np.asarray(mem[acc.name][key], dtype=np.float64)


def _as_value_vec(value, n: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (n,):
        arr = np.broadcast_to(arr, (n,)).copy()
    return arr


# ---------------------------------------------------------------------------
# shared-memory executor (§2.9 template, vectorized)
# ---------------------------------------------------------------------------

def run_shared_vector(
    ir: PlanIR,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
) -> SharedMachine:
    """Execute a ``//`` clause on the shared machine with one batched
    phase per node: membership as index vectors, guard as a boolean
    mask, the write as one fancy-indexed assignment.  Matches the scalar
    template element-for-element (all phases read pre-state; commits
    follow in node order)."""
    clause = ir.clause
    if clause.ordering is not Ordering.PAR:
        raise ValueError("the vector executor handles // clauses; "
                         "• clauses keep the scalar path")
    if machine is None:
        machine = SharedMachine(ir.pmax, env)
    genv = machine.env

    def make_fetch(idx_vecs):
        def fetch(ref: Ref):
            dims, funcs = access_spec(ref.imap)
            ai = [apply_ifunc(f, idx_vecs[d]) for d, f in zip(dims, funcs)]
            arr = genv[ref.name]
            return arr[tuple(ai) if len(ai) > 1 else ai[0]]
        return fetch

    pending = []
    for p in range(ir.pmax):
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        machine.stats[p].iterations += n
        if n == 0:
            pending.append((p, None, None, None))
            continue
        fetch = make_fetch(idx_vecs)
        mask = None
        if clause.guard is not None:
            mask = np.broadcast_to(np.asarray(
                eval_expr_vec(clause.guard, idx_vecs, fetch), dtype=bool
            ), (n,))
        values = _as_value_vec(eval_expr_vec(clause.rhs, idx_vecs, fetch), n)
        w_ai = _array_vecs(ir.write, idx_vecs)
        pending.append((p, w_ai, values, mask))

    target = genv[clause.lhs.name]
    for p, w_ai, values, mask in pending:
        machine.stats[p].barriers += 1
        if w_ai is None:
            continue
        if mask is not None:
            w_ai = [a[mask] for a in w_ai]
            values = values[mask]
        target[tuple(w_ai) if len(w_ai) > 1 else w_ai[0]] = values
        machine.stats[p].local_updates += int(values.size)
    return machine


# ---------------------------------------------------------------------------
# distributed-memory executor (§2.10 template, vectorized)
# ---------------------------------------------------------------------------

def make_vector_node_program(ir: PlanIR, ctx: NodeContext):
    """Batched node program: one message per (read, peer) pair.

    Send phase: for each non-replicated read, gather the locally resident
    values over ``Reside_p`` and ship one value vector per destination
    writer.  Update phase: walk ``Modify_p``, assemble each read's value
    vector from local gathers plus one receive per source, evaluate guard
    and body element-wise, commit with one fancy-indexed store.
    """

    def program():
        p = ctx.p
        clause = ir.clause
        refs = list(clause.reads())

        # ---- send phase ---------------------------------------------------
        for acc in ir.reads:
            if acc.replicated:
                continue
            idx_vecs = _member_vecs(ir, acc, p)
            n = int(idx_vecs[0].size)
            if n == 0:
                continue
            ctx.stats.iterations += n
            dest = _proc_linear(ir.write, idx_vecs)
            vals = _gather_local(ctx.mem, acc, idx_vecs)
            for q in np.unique(dest):
                q = int(q)
                if q == p:
                    continue
                ctx.send(q, ("vec", acc.pos),
                         np.ascontiguousarray(vals[dest == q]))

        # ---- update phase -------------------------------------------------
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        ctx.stats.iterations += n
        if n:
            by_ref: Dict[int, np.ndarray] = {}
            for acc, ref in zip(ir.reads, refs):
                if acc.replicated:
                    by_ref[id(ref)] = _gather_local(ctx.mem, acc, idx_vecs)
                    continue
                src = _proc_linear(acc, idx_vecs)
                vals = np.empty(n, dtype=np.float64)
                local = src == p
                if local.any():
                    sub = [v[local] for v in idx_vecs]
                    vals[local] = _gather_local(ctx.mem, acc, sub)
                for s in np.unique(src[~local]):
                    payload = ctx.note_received(
                        (yield ctx.recv(int(s), ("vec", acc.pos)))
                    )
                    vals[src == s] = np.asarray(payload, dtype=np.float64)
                by_ref[id(ref)] = vals

            def fetch(ref: Ref):
                return by_ref[id(ref)]

            ctx.charge_elements(n)
            mask = None
            if clause.guard is not None:
                mask = np.broadcast_to(np.asarray(
                    eval_expr_vec(clause.guard, idx_vecs, fetch), dtype=bool
                ), (n,))
            values = _as_value_vec(
                eval_expr_vec(clause.rhs, idx_vecs, fetch), n)
            key = _local_key(ir.write, idx_vecs)
            key_vecs = key if isinstance(key, tuple) else (key,)
            if mask is not None:
                key_vecs = tuple(a[mask] for a in key_vecs)
                values = values[mask]
            buf = ctx.mem[ir.write.name]
            buf[key_vecs if len(key_vecs) > 1 else key_vecs[0]] = values
            ctx.stats.local_updates += int(values.size)

        yield ctx.barrier()

    return program()


def _place_env(ir: PlanIR, env: Dict[str, np.ndarray],
               machine: DistributedMachine) -> None:
    decs = {ir.write.name: ir.write.dec}
    for acc in ir.reads:
        decs.setdefault(acc.name, acc.dec)
    for name, dec in decs.items():
        arr = np.asarray(env[name], dtype=np.float64)
        if isinstance(dec, GridDecomposition):
            scatter_global_nd(name, arr, dec, machine.memories)
            machine.decomps[name] = dec
        else:
            machine.place(name, arr, dec)


def run_distributed_vector(
    ir: PlanIR,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    model=None,
) -> DistributedMachine:
    """Place *env*, run the batched node programs, return the machine."""
    clause = ir.clause
    if clause.ordering is not Ordering.PAR:
        raise ValueError("the vector executor handles // clauses")
    if ir.write.replicated:
        raise ValueError("replicated writes keep the scalar path")
    if machine is None:
        machine = DistributedMachine(ir.pmax, model=model)
        _place_env(ir, env, machine)
    machine.run(lambda ctx: make_vector_node_program(ir, ctx))
    return machine


# ---------------------------------------------------------------------------
# overlapped executor (interior/boundary split, non-blocking receives)
# ---------------------------------------------------------------------------

def _interior_mask(ir: PlanIR, p: int, idx_vecs: List[np.ndarray]) -> np.ndarray:
    """Boolean mask over the flattened ``Modify_p`` enumeration selecting
    the node's interior (every non-replicated read locally resident).

    The per-dimension interior segments come from the `split-interior`
    pass; the product structure means the mask is the AND of per-dimension
    memberships.  A plan compiled without the pass gets an empty interior
    — the overlap program then degrades to the vector schedule (drain
    first, then compute), which is still correct."""
    n = int(idx_vecs[0].size)
    split = ir.interior_split
    if split is None or p not in split.per_node:
        return np.zeros(n, dtype=bool)
    ns = split.per_node[p]
    mask = np.ones(n, dtype=bool)
    for d, segs in enumerate(ns.interior):
        if not segs:
            return np.zeros(n, dtype=bool)
        members = np.concatenate([s.index_array() for s in segs])
        mask &= np.isin(idx_vecs[d], members)
    return mask


def make_overlap_node_program(ir: PlanIR, ctx: NodeContext):
    """Overlapped node program: communicate and compute concurrently.

    Schedule per node: (1) post all sends (same batched messages and tags
    as the vector program); (2) gather every locally resident read value
    — *before* any commit, so a read of the written array still sees
    pre-state; (3) post non-blocking receives for the remote portions;
    (4) compute and commit the interior (all reads local by
    construction) while messages are in flight; (5) drain the receives
    with Probe; (6) compute and commit the boundary remainder.

    Element-wise float64 evaluation is per-lane, so computing the
    interior and boundary as separate sub-vectors is bit-identical to the
    vector program's single full-vector evaluation.
    """

    def program():
        p = ctx.p
        clause = ir.clause
        refs = list(clause.reads())

        # ---- send phase (identical to the vector program) -----------------
        for acc in ir.reads:
            if acc.replicated:
                continue
            idx_vecs = _member_vecs(ir, acc, p)
            n = int(idx_vecs[0].size)
            if n == 0:
                continue
            ctx.stats.iterations += n
            dest = _proc_linear(ir.write, idx_vecs)
            vals = _gather_local(ctx.mem, acc, idx_vecs)
            for q in np.unique(dest):
                q = int(q)
                if q == p:
                    continue
                ctx.send(q, ("vec", acc.pos),
                         np.ascontiguousarray(vals[dest == q]))

        # ---- update phase -------------------------------------------------
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        ctx.stats.iterations += n
        if n:
            # Local gathers first (pre-state), then post the receives.
            by_ref: Dict[int, np.ndarray] = {}
            pending = []  # (handle, value vector, lanes it fills)
            for acc, ref in zip(ir.reads, refs):
                if acc.replicated:
                    by_ref[id(ref)] = _gather_local(ctx.mem, acc, idx_vecs)
                    continue
                src = _proc_linear(acc, idx_vecs)
                vals = np.empty(n, dtype=np.float64)
                local = src == p
                if local.any():
                    sub = [v[local] for v in idx_vecs]
                    vals[local] = _gather_local(ctx.mem, acc, sub)
                for s in np.unique(src[~local]):
                    handle = yield ctx.irecv(int(s), ("vec", acc.pos))
                    pending.append((handle, vals, src == int(s)))
                by_ref[id(ref)] = vals

            def commit(lanes: np.ndarray) -> None:
                """Evaluate guard/body over the selected lanes and store."""
                if not lanes.size:
                    return
                sub_idx = [v[lanes] for v in idx_vecs]

                def fetch(ref: Ref):
                    return by_ref[id(ref)][lanes]

                m = int(lanes.size)
                mask = None
                if clause.guard is not None:
                    mask = np.broadcast_to(np.asarray(
                        eval_expr_vec(clause.guard, sub_idx, fetch),
                        dtype=bool), (m,))
                values = _as_value_vec(
                    eval_expr_vec(clause.rhs, sub_idx, fetch), m)
                key = _local_key(ir.write, sub_idx)
                key_vecs = key if isinstance(key, tuple) else (key,)
                if mask is not None:
                    key_vecs = tuple(a[mask] for a in key_vecs)
                    values = values[mask]
                buf = ctx.mem[ir.write.name]
                buf[key_vecs if len(key_vecs) > 1 else key_vecs[0]] = values
                ctx.stats.local_updates += int(values.size)

            # Interior while messages are in flight.
            interior = _interior_mask(ir, p, idx_vecs)
            ilanes = np.nonzero(interior)[0]
            ctx.charge_elements(int(ilanes.size))
            commit(ilanes)

            # Drain the posted receives.
            while pending:
                done = yield ctx.probe([h for h, _, _ in pending])
                k = next(i for i, (h, _, _) in enumerate(pending)
                         if h is done)
                _, vals, fill = pending.pop(k)
                vals[fill] = np.asarray(
                    ctx.note_received(done.payload), dtype=np.float64)

            # Boundary remainder.
            blanes = np.nonzero(~interior)[0]
            ctx.charge_elements(int(blanes.size))
            commit(blanes)

        yield ctx.barrier()

    return program()


def run_distributed_overlap(
    ir: PlanIR,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    model=None,
) -> DistributedMachine:
    """Place *env*, run the overlapped node programs, return the machine."""
    clause = ir.clause
    if clause.ordering is not Ordering.PAR:
        raise ValueError("the overlap executor handles // clauses")
    if ir.write.replicated:
        raise ValueError("replicated writes keep the scalar path")
    if machine is None:
        machine = DistributedMachine(ir.pmax, model=model)
        _place_env(ir, env, machine)
    machine.run(lambda ctx: make_overlap_node_program(ir, ctx))
    return machine
