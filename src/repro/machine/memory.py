"""Per-node local memories and decomposition-aware load/store.

``A'`` — the machine image of a decomposed structure ``A`` (paper Eq. (2))
— materializes here as one local numpy array per processor, indexed by the
decomposition's ``local`` function.  ``scatter_global``/``gather_global``
move whole structures between the global (host) view and the node
memories, which is how experiment harnesses initialize and check runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..decomp.base import Decomposition
from ..decomp.overlap import OverlappedBlock
from ..decomp.replicated import Replicated

__all__ = ["LocalMemory", "scatter_global", "gather_global"]


class LocalMemory:
    """Named local arrays of one node."""

    def __init__(self, p: int):
        self.p = p
        self.arrays: Dict[str, np.ndarray] = {}

    def alloc(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        arr = np.zeros(max(size, 0), dtype=dtype)
        self.arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}[{v.size}]" for k, v in self.arrays.items())
        return f"LocalMemory(p={self.p}: {inner})"


def scatter_global(
    name: str,
    global_array: np.ndarray,
    d: Decomposition,
    memories: List[LocalMemory],
) -> None:
    """Distribute *global_array* into the node memories according to *d*.

    Replicated structures are copied whole to every node; overlapped
    blocks also fill their halo copies (so a run starts halo-consistent).
    """
    if len(global_array) != d.n:
        raise ValueError(
            f"array {name!r} has {len(global_array)} elements, decomposition "
            f"covers {d.n}"
        )
    if isinstance(d, Replicated):
        for mem in memories:
            mem.arrays[name] = np.array(global_array, copy=True)
        return
    if isinstance(d, OverlappedBlock):
        for p, mem in enumerate(memories):
            lo, hi = d.resident_range(p)
            size = max(0, hi - lo + 1)
            local = mem.alloc(name, size, dtype=global_array.dtype)
            if size:
                local[:] = global_array[lo : hi + 1]
        return
    for p, mem in enumerate(memories):
        local = mem.alloc(name, d.local_size(p), dtype=global_array.dtype)
        for i in d.owned(p):
            local[d.local(i)] = global_array[i]


def gather_global(
    name: str,
    d: Decomposition,
    memories: List[LocalMemory],
    dtype=np.float64,
) -> np.ndarray:
    """Reassemble the global view of a decomposed structure.

    For replicated structures node 0's copy is returned (all copies are
    asserted identical — a write-all-copies invariant check).
    """
    if isinstance(d, Replicated):
        ref = memories[0][name]
        for mem in memories[1:]:
            if not np.array_equal(mem[name], ref):
                raise AssertionError(
                    f"replicated array {name!r} diverged between nodes"
                )
        return np.array(ref, copy=True)
    out = np.zeros(d.n, dtype=dtype)
    if isinstance(d, OverlappedBlock):
        for p, mem in enumerate(memories):
            local = mem[name]
            for i in d.owned(p):
                out[i] = local[d.local_slot(p, i)]
        return out
    for p, mem in enumerate(memories):
        local = mem[name]
        for i in d.owned(p):
            out[i] = local[d.local(i)]
    return out
