"""Cooperative scheduler for SPMD node programs.

A *node program* is a Python generator: it runs until it needs the
machine — a blocking receive or a barrier — and yields a request object.
The scheduler resumes it when the request can be satisfied:

* ``Recv(src, tag)``   — resumed with the message payload once delivered;
* ``Irecv(src, tag)``  — non-blocking: resumed *immediately* with a
  :class:`RecvFuture` handle (the receive is only posted);
* ``Probe(handles)``   — resumed with the first posted handle whose
  message is available, fulfilled (``handle.payload`` set);
* ``Barrier()``        — resumed when all *live* nodes reach the barrier
  (nodes that already terminated no longer participate);
* ``Yield()``          — resumed on the next round (cooperative pause).

Scheduling is deterministic round-robin, so simulated runs are exactly
reproducible.  If every live node is blocked and no request can be
satisfied the scheduler raises :class:`DeadlockError` with a per-node
diagnosis — the simulator's replacement for a hung MPI job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Hashable, List, Optional, Tuple

from .channels import Network
from .stats import MachineStats

__all__ = ["Recv", "Irecv", "Probe", "RecvFuture", "Barrier", "Yield",
           "DeadlockError", "TraceEvent", "run_spmd"]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler observation: node *p* did *kind* in logical *round*.

    Kinds: ``"step"`` (resumed and ran to its next request), ``"recv"``
    (a blocking receive was satisfied), ``"barrier"`` (released from a
    barrier), ``"retire"`` (program finished).
    """

    round: int
    p: int
    kind: str


@dataclass(frozen=True)
class Recv:
    """Blocking receive request: wait for (src, tag)."""

    src: int
    tag: Hashable


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive request: post and continue.

    The scheduler resumes the node immediately with a fresh
    :class:`RecvFuture`; the message is consumed later by a
    :class:`Probe` naming that handle."""

    src: int
    tag: Hashable


@dataclass(eq=False)
class RecvFuture:
    """Handle for a posted :class:`Irecv` (identity, not value, equality)."""

    src: int
    tag: Hashable
    payload: Any = None
    done: bool = False


@dataclass(frozen=True)
class Probe:
    """Wait for any of the posted receives to complete.

    Resumed with the first handle (in list order) whose message is
    available; its ``payload``/``done`` fields are filled in."""

    handles: Tuple[RecvFuture, ...]

    def __init__(self, handles):
        object.__setattr__(self, "handles", tuple(handles))


@dataclass(frozen=True)
class Barrier:
    """Global barrier request."""


@dataclass(frozen=True)
class Yield:
    """Voluntary reschedule (lets other nodes progress)."""


NodeGen = Generator[Any, Any, None]


class DeadlockError(RuntimeError):
    """All live nodes blocked with nothing deliverable.

    Carries the structured diagnosis alongside the message:

    * ``blocked`` — ``{p: ("recv", src, tag)}`` for nodes stuck in a
      receive, ``{p: ("probe", ((src, tag), ..))}`` for nodes probing
      posted non-blocking receives, ``{p: ("barrier",)}`` for nodes
      parked at a barrier;
    * ``undelivered`` — in-flight ``(src, dst, tag)`` triples that no
      pending receive matches.
    """

    def __init__(self, message: str, blocked: Optional[Dict[int, tuple]] = None,
                 undelivered: Optional[List[tuple]] = None):
        super().__init__(message)
        self.blocked: Dict[int, tuple] = blocked or {}
        self.undelivered: List[tuple] = undelivered or []


def run_spmd(
    programs: List[NodeGen],
    network: Network,
    stats: Optional[MachineStats] = None,
    max_rounds: int = 10_000_000,
    trace: Optional[List["TraceEvent"]] = None,
) -> None:
    """Run one generator per node to completion.

    ``programs[p]`` is node *p*'s program.  The network must be the one the
    programs' sends go through (they capture it via closure/context).
    With *trace* (a list), a :class:`TraceEvent` is appended per
    scheduler observation — the raw material for pipeline/overlap
    analysis (:mod:`repro.machine.trace`).
    """
    pmax = len(programs)
    live: Dict[int, NodeGen] = dict(enumerate(programs))
    waiting: Dict[int, Any] = {}  # p -> pending request
    send_value: Dict[int, Any] = {}  # p -> value to send into the generator
    at_barrier: set[int] = set()

    def emit(round_, p, kind):
        if trace is not None:
            trace.append(TraceEvent(round_, p, kind))

    # Start every program to its first request.
    for p in list(live):
        _advance(p, live, waiting, None, stats)
        emit(0, p, "step" if p in live else "retire")

    rounds = 0
    while live:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("scheduler exceeded max_rounds; runaway program?")
        progressed = False

        # Barrier release: every live node is at the barrier.
        if at_barrier and at_barrier == set(live):
            if stats is not None:
                # a barrier synchronizes the virtual clocks to the laggard
                vmax = max((stats[p].vtime for p in at_barrier), default=0.0)
            for p in sorted(at_barrier):
                if stats is not None:
                    stats[p].barriers += 1
                    stats[p].vtime = vmax
                waiting.pop(p, None)
                send_value[p] = None
            at_barrier.clear()
            for p in sorted(live):
                emit(rounds, p, "barrier")
                _advance(p, live, waiting, send_value.pop(p, None), stats)
                if p not in live:
                    emit(rounds, p, "retire")
            progressed = True
            continue

        for p in sorted(live):
            req = waiting.get(p)
            if isinstance(req, Recv):
                msg = network.try_recv(p, req.src, req.tag)
                if msg is not None:
                    if stats is not None:
                        stats[p].recvs += 1
                        stats[p].vtime = max(stats[p].vtime, msg.deliver_time)
                    waiting.pop(p)
                    emit(rounds, p, "recv")
                    _advance(p, live, waiting, msg.payload, stats)
                    if p not in live:
                        emit(rounds, p, "retire")
                    progressed = True
            elif isinstance(req, Irecv):
                fut = RecvFuture(req.src, req.tag)
                waiting.pop(p)
                emit(rounds, p, "step")
                _advance(p, live, waiting, fut, stats)
                if p not in live:
                    emit(rounds, p, "retire")
                progressed = True
            elif isinstance(req, Probe):
                hit = None
                for h in req.handles:
                    if h.done:
                        hit = h
                        break
                    msg = network.try_recv(p, h.src, h.tag)
                    if msg is not None:
                        h.payload = msg.payload
                        h.done = True
                        if stats is not None:
                            stats[p].recvs += 1
                            stats[p].vtime = max(stats[p].vtime,
                                                 msg.deliver_time)
                        hit = h
                        break
                if hit is not None:
                    waiting.pop(p)
                    emit(rounds, p, "recv")
                    _advance(p, live, waiting, hit, stats)
                    if p not in live:
                        emit(rounds, p, "retire")
                    progressed = True
            elif isinstance(req, Yield):
                waiting.pop(p)
                emit(rounds, p, "step")
                _advance(p, live, waiting, None, stats)
                if p not in live:
                    emit(rounds, p, "retire")
                progressed = True
            elif isinstance(req, Barrier):
                at_barrier.add(p)
            elif req is None:
                emit(rounds, p, "step")
                _advance(p, live, waiting, None, stats)
                if p not in live:
                    emit(rounds, p, "retire")
                progressed = True
            else:  # pragma: no cover - defensive
                raise TypeError(f"node {p} yielded unknown request {req!r}")

        if not progressed and not (at_barrier and at_barrier == set(live)):
            def _diag(r):
                if isinstance(r, Recv):
                    return f"recv(src={r.src}, tag={r.tag!r})"
                if isinstance(r, Probe):
                    pend = [(h.src, h.tag) for h in r.handles if not h.done]
                    return f"probe({pend!r})"
                return "barrier" if isinstance(r, Barrier) else repr(r)

            def _blocked(r):
                if isinstance(r, Recv):
                    return ("recv", r.src, r.tag)
                if isinstance(r, Probe):
                    return ("probe", tuple(
                        (h.src, h.tag) for h in r.handles if not h.done))
                if isinstance(r, Barrier):
                    return ("barrier",)
                return ("other", repr(r))

            # deterministic report order: blocked nodes ascending,
            # undelivered messages by (destination, source, tag) — the
            # static verifier's witnesses follow the same ordering
            diag = {p: _diag(r) for p, r in sorted(waiting.items())}
            blocked = {p: _blocked(r) for p, r in sorted(waiting.items())}
            undelivered = sorted(network.pending_messages(),
                                 key=lambda m: (m[1], m[0], repr(m[2])))
            raise DeadlockError(
                f"deadlock after {rounds} rounds; blocked nodes: {diag}; "
                f"undelivered messages: {network.pending()}"
                + (f" {undelivered!r}" if undelivered else ""),
                blocked=blocked,
                undelivered=undelivered,
            )


def _advance(
    p: int,
    live: Dict[int, NodeGen],
    waiting: Dict[int, Any],
    value: Any,
    stats: Optional[MachineStats],
) -> None:
    """Resume node *p* with *value*; record its next request or retire it."""
    gen = live.get(p)
    if gen is None:
        return
    try:
        req = gen.send(value)
    except StopIteration:
        live.pop(p, None)
        waiting.pop(p, None)
        return
    if stats is not None:
        stats[p].steps += 1
    waiting[p] = req
