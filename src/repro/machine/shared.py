"""The simulated shared-memory machine (paper Section 2.9).

Shared-memory SPMD is simple: every processor can address every element
directly, so a clause becomes

    ``p := my_node; forall i in Modify_p do A[f(i)] := Expr(B[g(i)]); od;
    barrier;``

The simulation keeps one global environment; node programs are plain
callables executed phase by phase with a barrier between phases.  Because
``//`` clauses are independent (disjoint ``Modify_p`` writes under the
owner-computes rule), executing nodes in any order within a phase is
equivalent to true concurrency; reads-of-pre-state semantics are
preserved by double-buffering writes within a phase.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .stats import MachineStats

__all__ = ["SharedMachine", "SharedPhase"]

#: One phase of one node: (p, env, write_buffer, stats) -> None.  The node
#: reads from ``env`` (pre-state) and appends (name, index, value) writes
#: to the buffer; the machine commits the buffer at the phase barrier.
SharedPhase = Callable[[int, Dict[str, np.ndarray], List[Tuple[str, int, float]],
                        "MachineStats"], None]


class SharedMachine:
    """``pmax`` processors over one shared global environment."""

    def __init__(self, pmax: int, env: Dict[str, np.ndarray]):
        if pmax < 1:
            raise ValueError("pmax must be >= 1")
        self.pmax = pmax
        self.env = {k: np.asarray(v, dtype=np.float64) for k, v in env.items()}
        self.stats = MachineStats.for_nodes(pmax)

    def run_phase(self, phase: Callable[[int], List[Tuple[str, int, float]]]) -> None:
        """Execute one parallel phase: call ``phase(p)`` for every node
        against the shared pre-state, collect the write sets, then commit
        them at the barrier.

        Committing after all nodes ran models the ``forall … barrier``
        template: no node observes another node's writes within a phase.
        """
        buffers: List[List[Tuple[str, int, float]]] = []
        for p in range(self.pmax):
            buffers.append(phase(p))
        for p, buf in enumerate(buffers):
            for name, idx, value in buf:
                self.env[name][idx] = value
                self.stats[p].local_updates += 1
            self.stats[p].barriers += 1

    def run_sequential_phase(
        self, phase: Callable[[int], List[Tuple[str, int, float]]],
        order: Sequence[int] | None = None,
    ) -> None:
        """Execute a ``•``-ordered phase: nodes run and commit in *order*
        (default 0..pmax-1), each observing earlier nodes' writes —
        the degenerate DOACROSS schedule."""
        for p in order if order is not None else range(self.pmax):
            for name, idx, value in phase(p):
                self.env[name][idx] = value
                self.stats[p].local_updates += 1

    def array(self, name: str) -> np.ndarray:
        return self.env[name]
