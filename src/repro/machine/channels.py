"""Message channels: non-blocking send, blocking receive (paper §2.10).

The paper's distributed template assumes "a virtual machine that has
non-blocking sends and blocking receives".  :class:`Network` provides
exactly that: per (source, destination) FIFO queues with unbounded
buffering (sends always complete immediately), tagged messages, and a
``try_recv`` that the scheduler uses to decide whether a blocked node can
resume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, Optional, Tuple

__all__ = ["Message", "Network"]

Tag = Hashable


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    tag: Tag
    payload: Any


class Network:
    """FIFO channels between every ordered pair of nodes."""

    def __init__(self, pmax: int):
        self.pmax = pmax
        self._queues: Dict[Tuple[int, int], Deque[Message]] = {}
        self.total_messages = 0

    def _q(self, src: int, dst: int) -> Deque[Message]:
        key = (src, dst)
        q = self._queues.get(key)
        if q is None:
            q = deque()
            self._queues[key] = q
        return q

    def _check(self, p: int, role: str) -> None:
        if not (0 <= p < self.pmax):
            raise IndexError(f"{role} {p} out of range 0:{self.pmax - 1}")

    def send(self, src: int, dst: int, tag: Tag, payload: Any) -> None:
        """Non-blocking send: enqueue and return immediately."""
        self._check(src, "source")
        self._check(dst, "destination")
        self._q(src, dst).append(Message(src, dst, tag, payload))
        self.total_messages += 1

    def try_recv(self, dst: int, src: int, tag: Tag) -> Optional[Message]:
        """Receive the matching message if already delivered, else None.

        Matching is FIFO *per tag* within the (src, dst) channel: the first
        queued message with the requested tag is taken, so differently
        tagged traffic cannot block a receive it does not match.
        """
        q = self._q(src, dst)
        for k, msg in enumerate(q):
            if msg.tag == tag:
                del q[k]
                return msg
        return None

    def pending(self) -> int:
        """Messages sent but not yet received."""
        return sum(len(q) for q in self._queues.values())

    def pending_messages(self) -> list:
        """Every undelivered message as ``(src, dst, tag)``, in channel
        order — payloads are omitted (they may be large arrays)."""
        out = []
        for key in sorted(self._queues):
            out.extend((m.src, m.dst, m.tag) for m in self._queues[key])
        return out

    def pending_for(self, dst: int) -> int:
        return sum(len(q) for (s, d), q in self._queues.items() if d == dst)

    def drain_check(self) -> None:
        """Raise if undelivered messages remain (run-end sanity check)."""
        left = self.pending()
        if left:
            detail = {
                k: [m.tag for m in q] for k, q in self._queues.items() if q
            }
            raise AssertionError(f"{left} undelivered message(s): {detail}")
