"""Message channels: non-blocking send, blocking receive (paper §2.10).

The paper's distributed template assumes "a virtual machine that has
non-blocking sends and blocking receives".  :class:`Network` provides
exactly that: per (source, destination) FIFO queues with unbounded
buffering (sends always complete immediately), tagged messages, and a
``try_recv`` that the scheduler uses to decide whether a blocked node can
resume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, Optional, Tuple

__all__ = ["Message", "Network", "LatencyModel"]

Tag = Hashable


@dataclass(frozen=True)
class LatencyModel:
    """Virtual-time cost model for messages and compute.

    A message of *n* elements sent at virtual time *t* is considered
    delivered at ``t + alpha + beta*n``; each locally computed element
    costs ``t_element``.  The model is pure *accounting* — it never
    changes what the deterministic scheduler does, only the per-node
    virtual clocks (:attr:`~repro.machine.stats.NodeStats.vtime`), so
    the overlap backend's latency hiding is measurable on the simulator
    without giving up reproducible runs.  Times are arbitrary units.
    """

    alpha: float = 0.0      # fixed per-message latency
    beta: float = 0.0       # per-element transfer time
    t_element: float = 0.0  # per-element compute time

    def message_time(self, nelems: int) -> float:
        return self.alpha + self.beta * nelems


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    tag: Tag
    payload: Any
    deliver_time: float = 0.0


def _payload_elements(payload: Any) -> int:
    size = getattr(payload, "size", None)
    return int(size) if size is not None else 1


class Network:
    """FIFO channels between every ordered pair of nodes."""

    def __init__(self, pmax: int, model: Optional[LatencyModel] = None):
        self.pmax = pmax
        self.model = model
        self._queues: Dict[Tuple[int, int], Deque[Message]] = {}
        self.total_messages = 0

    def _q(self, src: int, dst: int) -> Deque[Message]:
        key = (src, dst)
        q = self._queues.get(key)
        if q is None:
            q = deque()
            self._queues[key] = q
        return q

    def _check(self, p: int, role: str) -> None:
        if not (0 <= p < self.pmax):
            raise IndexError(f"{role} {p} out of range 0:{self.pmax - 1}")

    def send(self, src: int, dst: int, tag: Tag, payload: Any,
             now: float = 0.0) -> None:
        """Non-blocking send: enqueue and return immediately.

        *now* is the sender's virtual time; with a latency model the
        message is stamped with its modeled delivery time, which the
        scheduler folds into the receiver's clock on receipt."""
        self._check(src, "source")
        self._check(dst, "destination")
        deliver = now
        if self.model is not None:
            deliver = now + self.model.message_time(_payload_elements(payload))
        self._q(src, dst).append(Message(src, dst, tag, payload, deliver))
        self.total_messages += 1

    def try_recv(self, dst: int, src: int, tag: Tag) -> Optional[Message]:
        """Receive the matching message if already delivered, else None.

        Matching is FIFO *per tag* within the (src, dst) channel: the first
        queued message with the requested tag is taken, so differently
        tagged traffic cannot block a receive it does not match.
        """
        q = self._q(src, dst)
        for k, msg in enumerate(q):
            if msg.tag == tag:
                del q[k]
                return msg
        return None

    def pending(self) -> int:
        """Messages sent but not yet received."""
        return sum(len(q) for q in self._queues.values())

    def pending_messages(self) -> list:
        """Every undelivered message as ``(src, dst, tag)``, in channel
        order — payloads are omitted (they may be large arrays)."""
        out = []
        for key in sorted(self._queues):
            out.extend((m.src, m.dst, m.tag) for m in self._queues[key])
        return out

    def pending_for(self, dst: int) -> int:
        return sum(len(q) for (s, d), q in self._queues.items() if d == dst)

    def drain_check(self) -> None:
        """Raise if undelivered messages remain (run-end sanity check)."""
        left = self.pending()
        if left:
            detail = {
                k: [m.tag for m in q] for k, q in self._queues.items() if q
            }
            raise AssertionError(f"{left} undelivered message(s): {detail}")
