"""Simulated parallel machines (paper Sections 2.9-2.10; see DESIGN.md
for the substitution rationale — this stands in for physical shared- and
distributed-memory hardware)."""

from .calibrate import MachineDescription, calibrate, load_machine
from .channels import LatencyModel, Message, Network
from .costmodel import (
    ETHERNET_CLUSTER,
    HYPERCUBE,
    SHARED_BUS,
    CostModel,
    calibrated_cost_model,
    default_cost_model,
)
from .distributed import DistributedMachine, NodeContext
from .memory import LocalMemory, gather_global, scatter_global
from .scheduler import (
    Barrier,
    DeadlockError,
    Irecv,
    Probe,
    Recv,
    RecvFuture,
    TraceEvent,
    Yield,
    run_spmd,
)
from .trace import activity_spans, overlap_factor, render_timeline
from .shared import SharedMachine
from .stats import MachineStats, NodeStats
from .vectorize import (
    apply_ifunc,
    eval_expr_vec,
    make_overlap_node_program,
    make_vector_node_program,
    run_distributed_overlap,
    run_distributed_vector,
    run_shared_vector,
)

__all__ = [
    "Network",
    "Message",
    "LatencyModel",
    "CostModel",
    "ETHERNET_CLUSTER",
    "HYPERCUBE",
    "SHARED_BUS",
    "MachineDescription",
    "calibrate",
    "calibrated_cost_model",
    "default_cost_model",
    "load_machine",
    "LocalMemory",
    "scatter_global",
    "gather_global",
    "Recv",
    "Irecv",
    "Probe",
    "RecvFuture",
    "Barrier",
    "Yield",
    "DeadlockError",
    "run_spmd",
    "TraceEvent",
    "activity_spans",
    "overlap_factor",
    "render_timeline",
    "DistributedMachine",
    "NodeContext",
    "SharedMachine",
    "MachineStats",
    "NodeStats",
    "apply_ifunc",
    "eval_expr_vec",
    "run_shared_vector",
    "make_vector_node_program",
    "run_distributed_vector",
    "make_overlap_node_program",
    "run_distributed_overlap",
]
