"""Analytic cost model over machine statistics.

The simulator counts *events* (iterations, membership tests, messages,
elements, barriers); a :class:`CostModel` assigns each event class a time
and turns a run's :class:`~repro.machine.stats.MachineStats` into modeled
per-node times, a makespan, and a speedup against the sequential
execution — the quantities 1991 papers plot.  Three presets bracket the
era's machines:

* ``ETHERNET_CLUSTER``  — huge message latency, cheap compute;
* ``HYPERCUBE``         — moderate latency (the iPSC-class machines the
  paper's distributed template targets);
* ``SHARED_BUS``        — no messages, barriers dominate.

All numbers are in arbitrary time units; only *ratios* matter, and the
benchmarks only assert shape (who wins, where crossovers fall).

A fourth, *measured* model is available once ``repro calibrate`` has run
on the host: :func:`calibrated_cost_model` loads the saved
:class:`~repro.machine.calibrate.MachineDescription` (explicit path or
``$REPRO_MACHINE_FILE``) and normalizes its seconds into ``t_update``
units, replacing the hardcoded ``alpha=50.0`` guess with the host's own
latency/compute ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .stats import MachineStats, NodeStats

__all__ = ["CostModel", "ETHERNET_CLUSTER", "HYPERCUBE", "SHARED_BUS",
           "calibrated_cost_model", "default_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Per-event time coefficients."""

    name: str
    t_update: float = 1.0      # one element update (compute)
    t_iteration: float = 0.2   # loop bookkeeping per iteration
    t_test: float = 0.5        # one run-time membership test
    alpha: float = 50.0        # per-message latency
    beta: float = 1.0          # per-element transfer time
    t_barrier: float = 20.0    # one barrier participation

    def node_time(self, s: NodeStats) -> float:
        """Modeled busy time of one node."""
        return (
            self.t_update * s.local_updates
            + self.t_iteration * s.iterations
            + self.t_test * s.membership_tests
            + self.alpha * (s.sends + s.recvs)
            + self.beta * (s.elements_sent + s.elements_received)
            + self.t_barrier * s.barriers
        )

    def node_times(self, stats: MachineStats) -> List[float]:
        return [self.node_time(s) for s in stats.nodes]

    def makespan(self, stats: MachineStats) -> float:
        """Modeled parallel completion time (critical-node approximation:
        the busiest node bounds the run)."""
        times = self.node_times(stats)
        return max(times) if times else 0.0

    def sequential_time(self, useful_updates: int,
                        iterations: int | None = None) -> float:
        """Modeled uniprocessor time for the same useful work (no tests,
        no messages, no barriers)."""
        it = useful_updates if iterations is None else iterations
        return self.t_update * useful_updates + self.t_iteration * it

    def speedup(self, stats: MachineStats,
                useful_updates: int | None = None) -> float:
        """Modeled speedup vs the sequential execution of the same work."""
        updates = (stats.total_updates() if useful_updates is None
                   else useful_updates)
        seq = self.sequential_time(updates)
        mk = self.makespan(stats)
        return seq / mk if mk else float("inf")


ETHERNET_CLUSTER = CostModel("ethernet-cluster", alpha=500.0, beta=5.0,
                             t_barrier=200.0)
HYPERCUBE = CostModel("hypercube", alpha=50.0, beta=1.0, t_barrier=20.0)
SHARED_BUS = CostModel("shared-bus", alpha=0.0, beta=0.0, t_barrier=5.0)


def calibrated_cost_model(path: Optional[str] = None) \
        -> Optional[CostModel]:
    """The measured model for this host, or ``None`` when no machine
    description is saved (``path`` argument or ``$REPRO_MACHINE_FILE``).
    See :mod:`repro.machine.calibrate`."""
    from .calibrate import load_machine

    md = load_machine(path)
    return md.cost_model() if md is not None else None


def default_cost_model() -> CostModel:
    """The calibrated model when one is configured, else ``HYPERCUBE``
    (the preset the benchmarks historically cited)."""
    return calibrated_cost_model() or HYPERCUBE
