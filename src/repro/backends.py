"""Execution-backend registry.

One canonical table of every ``backend=`` flavor the generated node
programs can run under, shared by the CLI and the ``run_*`` dispatchers
so an unknown name fails the same way everywhere: a one-line error that
lists the valid backends instead of a traceback from deep inside a
template.

Entry points that only support a subset (e.g. shared-memory program runs
have no ``overlap`` — there is no communication to hide) pass their
subset as *allowed*; the error message then lists that subset.

The registry also centralizes *availability*: backends that depend on an
optional package (``native`` → numba, ``mpi`` → mpi4py) register a probe
here, so every dispatcher and the CLI report "numba not installed" /
"mpi4py unavailable" the same way — one :func:`backend_availability`
lookup, one trace-noted line, fused fallback — instead of scattered
backend-specific probes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, NamedTuple, Optional, Tuple

__all__ = [
    "BACKENDS",
    "BackendAvailability",
    "UnknownBackendError",
    "availability_snapshot",
    "backend_availability",
    "backend_names",
    "resolve_backend",
    "validate_backend",
]


class UnknownBackendError(ValueError):
    """A ``backend=`` name not present in the registry (or not supported
    by the entry point that validated it)."""


#: name -> one-line description, in increasing order of specialization
BACKENDS: "OrderedDict[str, str]" = OrderedDict((
    ("scalar", "per-element reference templates (paper §2.9/§2.10)"),
    ("vector", "NumPy segment executor (batched messages)"),
    ("overlap", "vector + interior compute while messages are in flight"),
    ("fused", "compile-once fused node kernels, in-process"),
    ("native", "numba-njit compiled node kernels (falls back to fused "
               "when numba is absent)"),
    ("mp", "multi-process runtime: fused kernels on real OS processes"),
    ("mpi", "multi-node SPMD under mpiexec: nonblocking point-to-point "
            "messages over a Cartesian process grid (falls back to "
            "fused when mpi4py is absent)"),
))


class BackendAvailability(NamedTuple):
    """One backend's probed availability."""

    backend: str
    available: bool
    mode: str       # "builtin" | the probe's mode ("njit", "stub", ...)
    reason: str     # one-line availability note (the fallback message)


def backend_availability(backend: str) -> BackendAvailability:
    """Probe whether *backend* can actually run in this process.

    In-process backends are always available ("builtin"); optional-
    dependency backends delegate to their cached probe.  The ``reason``
    string is what dispatchers put on the trace when falling back.
    """
    if backend == "native":
        from .pipeline.native import native_support

        s = native_support()
        return BackendAvailability("native", s.available, s.mode, s.reason)
    if backend == "mpi":
        from .mpi.support import mpi_support

        s = mpi_support()
        return BackendAvailability("mpi", s.available, s.mode, s.reason)
    if backend not in BACKENDS:
        raise UnknownBackendError(
            f"unknown backend {backend!r}; valid backends: "
            + ", ".join(BACKENDS))
    return BackendAvailability(backend, True, "builtin",
                               "always available (in-process)")


def availability_snapshot() -> "OrderedDict[str, dict]":
    """Every backend's availability as plain dicts (benchmark metadata,
    ``repro calibrate`` output)."""
    return OrderedDict(
        (name, backend_availability(name)._asdict()) for name in BACKENDS)


def resolve_backend(backend, allowed=None, context=None, trace=None,
                    fallback: str = "fused") -> str:
    """Validate *backend*, then degrade to *fallback* (with a one-line
    trace note) when its availability probe fails.  The single entry
    point dispatchers use before branching on optional backends."""
    validate_backend(backend, allowed, context)
    av = backend_availability(backend)
    if av.available:
        return backend
    if trace is not None:
        trace.note(f"backend={backend!r} fell back to the {fallback} "
                   f"path: {av.reason}")
    return fallback


def backend_names(allowed: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    """The valid backend names, optionally restricted to *allowed*."""
    if allowed is None:
        return tuple(BACKENDS)
    return tuple(allowed)


def validate_backend(
    backend: str,
    allowed: Optional[Iterable[str]] = None,
    context: Optional[str] = None,
) -> str:
    """Return *backend* if known (and in *allowed*); raise otherwise.

    The exception message is a single line naming the valid choices —
    callers surface it verbatim (the CLI turns it into ``error: ...``).
    """
    names = backend_names(allowed)
    if backend in names:
        return backend
    where = f" for {context}" if context else ""
    raise UnknownBackendError(
        f"unknown backend {backend!r}{where}; valid backends: "
        + ", ".join(names)
    )
