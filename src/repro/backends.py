"""Execution-backend registry.

One canonical table of every ``backend=`` flavor the generated node
programs can run under, shared by the CLI and the ``run_*`` dispatchers
so an unknown name fails the same way everywhere: a one-line error that
lists the valid backends instead of a traceback from deep inside a
template.

Entry points that only support a subset (e.g. shared-memory program runs
have no ``overlap`` — there is no communication to hide) pass their
subset as *allowed*; the error message then lists that subset.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple

__all__ = [
    "BACKENDS",
    "UnknownBackendError",
    "backend_names",
    "validate_backend",
]


class UnknownBackendError(ValueError):
    """A ``backend=`` name not present in the registry (or not supported
    by the entry point that validated it)."""


#: name -> one-line description, in increasing order of specialization
BACKENDS: "OrderedDict[str, str]" = OrderedDict((
    ("scalar", "per-element reference templates (paper §2.9/§2.10)"),
    ("vector", "NumPy segment executor (batched messages)"),
    ("overlap", "vector + interior compute while messages are in flight"),
    ("fused", "compile-once fused node kernels, in-process"),
    ("native", "numba-njit compiled node kernels (falls back to fused "
               "when numba is absent)"),
    ("mp", "multi-process runtime: fused kernels on real OS processes"),
))


def backend_names(allowed: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    """The valid backend names, optionally restricted to *allowed*."""
    if allowed is None:
        return tuple(BACKENDS)
    return tuple(allowed)


def validate_backend(
    backend: str,
    allowed: Optional[Iterable[str]] = None,
    context: Optional[str] = None,
) -> str:
    """Return *backend* if known (and in *allowed*); raise otherwise.

    The exception message is a single line naming the valid choices —
    callers surface it verbatim (the CLI turns it into ``error: ...``).
    """
    names = backend_names(allowed)
    if backend in names:
        return backend
    where = f" for {context}" if context else ""
    raise UnknownBackendError(
        f"unknown backend {backend!r}{where}; valid backends: "
        + ", ".join(names)
    )
