"""Self-exec under ``mpiexec``: run one :class:`MpiJob` out-of-world.

The parent process (a test, the CLI, a notebook) is *not* an MPI rank —
``run_distributed(..., backend="mpi")`` must nevertheless Just Work.  The
launcher serializes the job into a private directory::

    job.pkl     the MpiJob (lowered programs, flags, repeat, swap)
    env.npz     the global arrays (pre-state)

spawns ``mpiexec -n P python -m repro.mpi.rank --job DIR`` in its own
process group, and reads back::

    result.npz  full post-state (rank 0 writes it after the allgather)
    stats.json  per-rank RuntimeStats + per-node counters

A timeout kills the whole process group (``killpg``) so no mpiexec child
ever outlives the parent — the teardown invariant the tests assert.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import signal
import subprocess
import sys
import tempfile
from typing import Dict, List, Tuple

import numpy as np

from ..runtime.stats import RuntimeStats
from .support import find_launcher

__all__ = ["MpiLaunchError", "launch_job"]


class MpiLaunchError(RuntimeError):
    """mpiexec could not be run or exited nonzero (stderr tail in the
    message)."""


def _rank_env() -> Dict[str, str]:
    """Child environment: inherit, but make sure the repro package is
    importable (the parent may run from a checkout with PYTHONPATH) and
    the children never re-launch recursively."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if src not in parts:
        env["PYTHONPATH"] = os.pathsep.join([src] + parts)
    return env


def _stderr_tail(text: str, lines: int = 12) -> str:
    tail = [ln for ln in text.strip().splitlines() if ln.strip()]
    return "\n".join(tail[-lines:])


def launch_job(job, arrays: Dict[str, np.ndarray], nranks: int,
               timeout: float):
    """Run *job* under ``mpiexec -n nranks``; returns
    ``(arrays, stats, counts)`` with *arrays* holding the post-state.
    Raises :class:`MpiLaunchError` on launcher failure, timeout, or a
    nonzero exit (an aborted rank)."""
    launcher = find_launcher()
    if launcher is None:
        raise MpiLaunchError("no mpiexec/mpirun launcher on PATH")
    jobdir = tempfile.mkdtemp(prefix="repro-mpi-")
    try:
        with open(os.path.join(jobdir, "job.pkl"), "wb") as fh:
            pickle.dump(job, fh)
        np.savez(os.path.join(jobdir, "env.npz"), **arrays)
        cmd = [launcher, "-n", str(nranks), sys.executable, "-m",
               "repro.mpi.rank", "--job", jobdir]
        try:
            proc = subprocess.Popen(
                cmd, env=_rank_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
                start_new_session=True)
        except OSError as e:
            raise MpiLaunchError(f"could not exec {launcher}: {e}") from e
        try:
            out, err = proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            # kill the whole group: mpiexec plus every rank it spawned
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                proc.kill()
            proc.wait()
            raise MpiLaunchError(
                f"mpiexec run exceeded the {timeout:.1f}s timeout "
                "(process group killed)") from None
        if proc.returncode != 0:
            raise MpiLaunchError(
                f"mpiexec exited with status {proc.returncode}:\n"
                + _stderr_tail(err or out))
        result_path = os.path.join(jobdir, "result.npz")
        stats_path = os.path.join(jobdir, "stats.json")
        if not (os.path.exists(result_path) and os.path.exists(stats_path)):
            raise MpiLaunchError(
                "mpiexec exited 0 but wrote no result:\n"
                + _stderr_tail(err or out))
        with np.load(result_path) as data:
            for name in data.files:
                arrays[name] = np.array(data[name])
        with open(stats_path) as fh:
            payload = json.load(fh)
        stats = [_stats_from(d) for d in payload["stats"]]
        counts = [{int(p): c for p, c in by.items()}
                  for by in payload["counts"]]
        return arrays, stats, counts
    finally:
        shutil.rmtree(jobdir, ignore_errors=True)


def _stats_from(d: dict) -> RuntimeStats:
    d = dict(d)
    d["nodes"] = tuple(d.get("nodes", ()))
    return RuntimeStats(**d)
