"""Multi-node MPI backend: SPMD execution of lowered node programs.

The last step from "simulated distributed machine" to "actually
distributed": the same :class:`~repro.runtime.lowering.MpProgram` the
shm worker pool executes is run SPMD under ``mpiexec -n P`` with real
``Isend``/``Irecv``/``Waitall`` and genuinely private rank memories —
ranks attached to their node sets through a Cartesian communicator when
the decomposition is a grid.

Layers:

=============  ==========================================================
:mod:`support`   cached availability probe (mpi4py / stub / none)
:mod:`transport` mpi4py adapter + in-process stub world (threads)
:mod:`rank`      the SPMD runner; ``python -m repro.mpi.rank`` entry
:mod:`launcher`  out-of-world self-exec under ``mpiexec``
:mod:`exec`      parent-side drivers wired into ``backend="mpi"``
=============  ==========================================================

Heavy submodules load lazily so ``python -m repro.mpi.rank`` does not
re-import itself and probing availability stays import-free.
"""

from .support import (
    MpiSupport,
    in_mpi_world,
    mpi_support,
    reset_mpi_support,
)

__all__ = [
    "MpiJob",
    "MpiLaunchError",
    "MpiMachine",
    "MpiRankError",
    "MpiSupport",
    "MpiUnavailableError",
    "encode_tag",
    "in_mpi_world",
    "max_tag",
    "mpi_support",
    "reset_mpi_support",
    "run_distributed_mpi",
    "run_program_mpi",
    "run_shared_mpi",
]

_EXEC = ("MpiMachine", "MpiRankError", "MpiUnavailableError",
         "run_distributed_mpi", "run_program_mpi", "run_shared_mpi")
_RANK = ("MpiJob", "encode_tag", "max_tag")


def __getattr__(name: str):
    if name in _EXEC:
        from . import exec as _exec_mod

        return getattr(_exec_mod, name)
    if name in _RANK:
        from . import rank as _rank_mod

        return getattr(_rank_mod, name)
    if name == "MpiLaunchError":
        from .launcher import MpiLaunchError

        return MpiLaunchError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
