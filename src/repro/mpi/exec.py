"""Parent-side drivers of the MPI backend: ``backend="mpi"`` entries.

Same contract as the mp runtime's drivers (:mod:`repro.runtime.exec`) —
strict gating, one cached lowering per plan, schedule certificate before
anything is posted, counters aggregated counter-for-counter with the
fused backend — but execution happens SPMD on MPI ranks with private
memories and real ``Isend``/``Irecv``/``Waitall``:

* **out-of-world** (the normal case: a test, the CLI, a notebook): the
  job is serialized and self-exec'd under ``mpiexec -n P`` via
  :mod:`.launcher`;
* **in-world** (the caller's script itself runs under ``mpiexec``):
  every rank calls straight into :func:`repro.mpi.rank.run_job` on
  COMM_WORLD — no double-launch;
* **stub** (``REPRO_MPI_STUB=1``): ranks run as in-process threads over
  the queue transport — the whole runner is testable without mpi4py.

A plan with no mp form still raises
:class:`~repro.runtime.lowering.MpLoweringError`;
:class:`MpiUnavailableError` additionally covers "mpi4py not installed"
and "tag space exceeds the portable minimum".  The dispatchers catch
both and fall back to the in-process fused path with a trace note.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.shared import SharedMachine
from ..runtime.exec import MpMachine, _certify, _check, _fill_stats
from ..runtime.lowering import MpLoweringError, lower_dist, lower_shared
from .rank import MpiJob, attach, max_tag, run_job
from .support import in_mpi_world, mpi_support

__all__ = [
    "MAX_PORTABLE_TAG",
    "MpiMachine",
    "MpiRankError",
    "MpiUnavailableError",
    "run_distributed_mpi",
    "run_program_mpi",
    "run_shared_mpi",
]

#: the MPI standard's guaranteed minimum for MPI_TAG_UB; the parent
#: cannot read the real attribute without initializing MPI, so programs
#: whose encoded tag space exceeds this fall back to fused
MAX_PORTABLE_TAG = 32767

#: default rank-count ceiling when ``processes``/``--np`` is not given
_DEFAULT_MAX_RANKS = 8

DEFAULT_TIMEOUT = 120.0


class MpiUnavailableError(RuntimeError):
    """The MPI backend cannot run here (reason in ``args[0]``); the
    dispatchers fall back to the in-process fused path."""


class MpiRankError(RuntimeError):
    """A rank failed (or the launch died) mid-run.  Carries the phase
    the failing rank was in when known; the attached schedule
    certificate (see :func:`repro.analysis.cite_certificate`) rules the
    static schedule out as the cause."""

    def __init__(self, message: str, phase: str = "?", rank: int = -1):
        super().__init__(message)
        self.phase = phase
        self.rank = rank


class MpiMachine(MpMachine):
    """Result surface of a distributed MPI run: global post-state plus
    the usual stats counters.  ``mode`` records the transport that
    actually ran ("mpi4py", "stub"); ``nranks`` the world size."""

    is_mpi = True

    def __init__(self, pmax: int, decomps: Dict[str, object],
                 mode: str = "?", nranks: int = 0):
        super().__init__(pmax, decomps)
        self.mode = mode
        self.nranks = nranks


def _nranks(processes: Optional[int], pmax: int) -> int:
    if processes is None:
        env = os.environ.get("REPRO_MPI_RANKS")
        processes = int(env) if env else min(pmax, _DEFAULT_MAX_RANKS)
    return max(1, min(int(processes), pmax))


def _grid_shape_of(prog) -> tuple:
    dec = prog.decomps.get(prog.write_name)
    shape = getattr(dec, "grid_shape", None)
    return tuple(shape) if shape else ()


def _guard_tags(progs) -> None:
    for prog in progs:
        need = max_tag(prog.pmax, prog.nreads)
        if need > MAX_PORTABLE_TAG:
            raise MpiUnavailableError(
                f"encoded (seq, dst, src, pos) tag space needs {need} "
                f"tags but the portable MPI minimum is {MAX_PORTABLE_TAG}")


def _run_stub(job: MpiJob, arrays: Dict[str, np.ndarray], nranks: int):
    """In-process execution: one thread per rank over the stub
    transport.  Rank 0 runs against the caller's *arrays* dict (the
    final allgather leaves the full post-state there); every other rank
    gets a private copy — genuinely private memories."""
    from .transport import StubAbort, StubWorld

    world = StubWorld(nranks, timeout=job.timeout)
    results: List[object] = [None] * nranks
    errors: List[Optional[BaseException]] = [None] * nranks

    def body(r: int) -> None:
        local = (arrays if r == 0 else
                 {name: arr.copy() for name, arr in arrays.items()})
        try:
            results[r] = run_job(attach(world.comm(r), job), job, local)
        except BaseException as e:  # noqa: BLE001 — reported below
            errors[r] = e

    threads = [threading.Thread(target=body, args=(r,), daemon=True,
                                name=f"repro-mpi-stub-{r}")
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(job.timeout + 30.0)
    if any(t.is_alive() for t in threads):
        world.abort()
        for t in threads:
            t.join(5.0)
        raise MpiRankError("stub world hung past the run timeout")
    primary = next((e for e in errors
                    if e is not None and not isinstance(e, StubAbort)),
                   next((e for e in errors if e is not None), None))
    if primary is not None:
        rank = errors.index(primary)
        raise MpiRankError(
            f"rank {rank} failed in phase "
            f"'{getattr(primary, '_mpi_phase', '?')}': {primary}",
            phase=getattr(primary, "_mpi_phase", "?"),
            rank=rank) from primary
    return results[0]


def _execute(job: MpiJob, arrays: Dict[str, np.ndarray], nranks: int,
             cert):
    """Dispatch one job to the available transport; returns
    ``(mode, stats, counts)`` with *arrays* mutated to the post-state.
    Rank failures come back as :class:`MpiRankError` citing *cert*."""
    from ..analysis import cite_certificate

    sup = mpi_support()
    if not sup.available:
        raise MpiUnavailableError(sup.reason)
    try:
        if sup.mode == "stub":
            stats, counts = _run_stub(job, arrays, nranks)
            return "stub", stats, counts
        if in_mpi_world():
            from .transport import world_comm

            comm = world_comm()
            try:
                stats, counts = run_job(attach(comm, job), job, arrays)
            except BaseException as e:
                raise MpiRankError(
                    f"rank {comm.rank} failed in phase "
                    f"'{getattr(e, '_mpi_phase', '?')}': {e}",
                    phase=getattr(e, "_mpi_phase", "?"),
                    rank=comm.rank) from e
            return "mpi4py", stats, counts
        from .launcher import MpiLaunchError, launch_job

        try:
            _arrays, stats, counts = launch_job(job, arrays, nranks,
                                                job.timeout)
        except MpiLaunchError as e:
            raise MpiRankError(str(e)) from e
        return "mpi4py", stats, counts
    except MpiRankError as err:
        cite_certificate(err, cert)
        raise


def _as_arrays(env: Dict[str, np.ndarray],
               names) -> Dict[str, np.ndarray]:
    out = {}
    for name in names:
        if name not in env:
            raise KeyError(f"environment is missing array {name!r}")
        out[name] = np.ascontiguousarray(env[name], dtype=np.float64).copy()
    return out


def run_distributed_mpi(
    ir,
    env: Dict[str, np.ndarray],
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_rank: int = -1,
) -> MpiMachine:
    """Execute a ``//`` clause's distributed program SPMD over MPI
    ranks (Cartesian attachment when the write decomposition is a grid
    covering the world exactly)."""
    _check(ir, strict)
    prog = lower_dist(ir)
    _guard_tags([prog])
    cert = _certify([prog], strict)
    arrays = _as_arrays(env, prog.array_names)
    machine = MpiMachine(ir.pmax, prog.decomps)
    for name, arr in env.items():
        machine.arrays[name] = np.asarray(arr, dtype=np.float64).copy()
    nranks = _nranks(processes, ir.pmax)
    job = MpiJob(progs=(prog,), flags=(True,),
                 names=tuple(prog.array_names),
                 grid_shape=_grid_shape_of(prog),
                 timeout=timeout or DEFAULT_TIMEOUT,
                 fault_rank=_fault_rank)
    mode, stats, counts = _execute(job, arrays, nranks, cert)
    machine.mode, machine.nranks = mode, nranks
    machine.arrays[prog.write_name] = arrays[prog.write_name]
    machine.runtime_stats = _fill_stats(machine.stats,
                                        list(zip(stats, counts)))
    return machine


def run_shared_mpi(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_rank: int = -1,
) -> SharedMachine:
    """Execute a ``//`` clause's shared kernels SPMD over MPI ranks (the
    degenerate no-send flavor: the pre-commit barrier is the only
    communication beside the final state exchange)."""
    _check(ir, strict)
    prog = lower_shared(ir)
    _guard_tags([prog])
    cert = _certify([prog], strict)
    if machine is None:
        machine = SharedMachine(ir.pmax, env)
    genv = machine.env
    arrays = _as_arrays(genv, prog.array_names)
    nranks = _nranks(processes, ir.pmax)
    job = MpiJob(progs=(prog,), flags=(True,),
                 names=tuple(prog.array_names),
                 timeout=timeout or DEFAULT_TIMEOUT,
                 fault_rank=_fault_rank)
    mode, stats, counts = _execute(job, arrays, nranks, cert)
    np.copyto(genv[prog.write_name], arrays[prog.write_name])
    machine.runtime_stats = _fill_stats(machine.stats,
                                        list(zip(stats, counts)))
    return machine


def run_program_mpi(
    pir,
    machine: SharedMachine,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_rank: int = -1,
) -> Tuple[SharedMachine, int]:
    """Execute a whole compiled program (``ProgramIR``) SPMD over MPI
    ranks: every clause lowered once, ONE world across all clauses and
    all ``repeat`` iterations, end-of-clause barriers only where the
    fusion pass kept them, rank-local buffer swaps between iterations,
    and a single final-state exchange.  Returns ``(machine, barriers)``.

    Unlike the mp runtime — whose ranks share the global arrays and can
    run the degenerate shared flavor — MPI ranks have private memories,
    so every step runs the **dist** flavor: cross-node reads travel as
    real messages, keeping each rank fresh at the positions it owns
    between steps.  That also means a surviving redistribution boundary
    (an array produced under one placement and consumed under another)
    has no whole-program MPI form: the producing ranks are not the ones
    the consumer's send plan reads from.

    Raises :class:`MpLoweringError` when the program has no
    whole-program form — the caller falls back to driving clauses
    individually (one MPI world per clause per step, each starting from
    globally consistent state)."""
    steps = pir.steps
    for st in steps:
        _check(st.ir, strict)
    if pir.repeat > 1 and not pir.pipelined:
        raise MpLoweringError(
            f"time loop is not pipelined ({pir.pipeline_reason})")
    if pir.redistributions:
        label, name, _ = pir.redistributions[0]
        raise MpLoweringError(
            f"redistribution boundary survives elision ({name!r} at "
            f"{label}): private rank memories would read stale data")
    progs = [lower_dist(st.ir) for st in steps]
    _guard_tags(progs)
    cert = _certify(progs, strict, flags=pir.barrier_flags(),
                    repeat=pir.repeat)
    genv = machine.env
    names = sorted(
        set().union(*(set(p.array_names) for p in progs))
        | {n for pair in pir.swap for n in pair})
    arrays = _as_arrays(genv, names)
    nranks = _nranks(processes, pir.pmax)
    job = MpiJob(progs=tuple(progs), flags=tuple(pir.barrier_flags()),
                 repeat=pir.repeat, swap=tuple(pir.swap),
                 names=tuple(names),
                 timeout=timeout or DEFAULT_TIMEOUT,
                 fault_rank=_fault_rank)
    mode, stats, counts = _execute(job, arrays, nranks, cert)
    # ranks swap their name -> buffer dicts after every step (including
    # the last), exactly like the reference semantics swaps env entries,
    # and the final allgather fills the post-swap names — so the dict
    # already carries every array under its final name
    for name in names:
        np.copyto(genv[name], arrays[name])
    machine.runtime_stats = _fill_stats(machine.stats,
                                        list(zip(stats, counts)))
    return machine, pir.barriers_per_step() * pir.repeat
