"""Rank transports: mpi4py point-to-point and the in-process stub.

The rank runner (:mod:`repro.mpi.rank`) is written against one small
surface — nonblocking ``isend``/``irecv`` on float64 buffers, ``waitall``,
``barrier``, object ``bcast``/``allgather``, and Cartesian attachment —
with two implementations:

:class:`Mpi4pyComm`
    wraps an ``mpi4py.MPI`` communicator; ``make_cart`` calls
    ``Create_cart(dims=grid, periods=False, reorder=False)`` so the cart
    rank order matches the decomposition's row-major node numbering and
    the runner's ``node % size`` attachment stays valid.

:class:`StubComm`
    ``REPRO_MPI_STUB`` testing mode: every rank is a thread of one
    :class:`StubWorld`, messages travel through per-rank mailboxes keyed
    by ``(source, tag)`` (FIFO per key, content *copied* at send time so
    rank memories stay genuinely private), and the pre-commit barrier is
    a ``threading.Barrier``.  A rank failure aborts the world — every
    blocked wait wakes with :class:`StubAbort` — so a killed rank can
    never leave sibling threads hanging (the ``WorkerCrashError``-analog
    teardown the tests assert).

Both transports expose ``tag_ub`` so the runner can verify the encoded
``(seq, dst, src, pos)`` tag space fits before posting anything.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Mpi4pyComm",
    "StubAbort",
    "StubComm",
    "StubWorld",
    "world_comm",
]


# ---------------------------------------------------------------------------
# mpi4py transport
# ---------------------------------------------------------------------------

class Mpi4pyComm:
    """Thin adapter over an ``mpi4py.MPI`` communicator."""

    mode = "mpi4py"

    def __init__(self, comm=None):
        from mpi4py import MPI

        self.MPI = MPI
        self.comm = MPI.COMM_WORLD if comm is None else comm
        self.rank = self.comm.Get_rank()
        self.size = self.comm.Get_size()
        tag_ub = self.comm.Get_attr(MPI.TAG_UB)
        # the MPI standard guarantees at least 32767 when the attribute
        # is (unusually) absent
        self.tag_ub = int(tag_ub) if tag_ub else 32767
        self.coords: Optional[Tuple[int, ...]] = None

    def make_cart(self, grid_shape) -> "Mpi4pyComm":
        """Attach through a Cartesian communicator matching the
        decomposition's grid dims.  ``reorder=False`` keeps rank numbers
        identical to the parent communicator, so linear node ids and
        cart coordinates agree with the decomposition's row-major
        numbering."""
        cart = self.comm.Create_cart(
            dims=list(grid_shape),
            periods=[False] * len(grid_shape),
            reorder=False,
        )
        out = Mpi4pyComm(cart)
        out.coords = tuple(cart.Get_coords(out.rank))
        return out

    def isend(self, buf: np.ndarray, dest: int, tag: int):
        return self.comm.Isend([buf, self.MPI.DOUBLE], dest=dest, tag=tag)

    def irecv(self, buf: np.ndarray, source: int, tag: int):
        return self.comm.Irecv([buf, self.MPI.DOUBLE], source=source,
                               tag=tag)

    def waitall(self, requests) -> None:
        self.MPI.Request.Waitall(list(requests))

    def barrier(self) -> None:
        self.comm.Barrier()

    def bcast_obj(self, obj, root: int = 0):
        return self.comm.bcast(obj, root=root)

    def allgather_obj(self, obj) -> list:
        return self.comm.allgather(obj)

    def abort(self, code: int = 1) -> None:
        self.comm.Abort(code)


def world_comm() -> Mpi4pyComm:
    """The COMM_WORLD adapter (imports — and thereby initializes —
    mpi4py; only call when actually launched under MPI)."""
    return Mpi4pyComm()


# ---------------------------------------------------------------------------
# stub transport (threads + mailboxes)
# ---------------------------------------------------------------------------

class StubAbort(RuntimeError):
    """The stub world was aborted by a failing rank."""


class _Mailbox:
    """One rank's inbox: FIFO message queues keyed by (source, tag)."""

    def __init__(self, world: "StubWorld"):
        self.world = world
        self.cond = threading.Condition()
        self.queues: Dict[Tuple[int, int], deque] = {}

    def put(self, source: int, tag: int, payload: np.ndarray) -> None:
        with self.cond:
            self.queues.setdefault((source, tag), deque()).append(payload)
            self.cond.notify_all()

    def get(self, source: int, tag: int, deadline: float) -> np.ndarray:
        key = (source, tag)
        with self.cond:
            while True:
                if self.world.aborted:
                    raise StubAbort("stub world aborted")
                q = self.queues.get(key)
                if q:
                    return q.popleft()
                left = deadline - time.monotonic()
                if left <= 0:
                    raise TimeoutError(
                        f"stub recv (source={source}, tag={tag}) timed out")
                self.cond.wait(min(left, 0.1))

    def wake(self) -> None:
        with self.cond:
            self.cond.notify_all()


class StubWorld:
    """One in-process MPI world of *size* ranks (threads)."""

    def __init__(self, size: int, timeout: float = 120.0):
        self.size = size
        self.timeout = float(timeout)
        self.barrier = threading.Barrier(size)
        self.mailboxes = [_Mailbox(self) for _ in range(size)]
        self.slots: List[object] = [None] * size
        self.bcast_slot: object = None
        self.aborted = False

    def abort(self) -> None:
        self.aborted = True
        self.barrier.abort()
        for mb in self.mailboxes:
            mb.wake()

    def comm(self, rank: int) -> "StubComm":
        return StubComm(self, rank)


class _StubRecvRequest:
    def __init__(self, comm: "StubComm", buf, source, tag):
        self.comm, self.buf, self.source, self.tag = comm, buf, source, tag

    def wait(self) -> None:
        payload = self.comm.world.mailboxes[self.comm.rank].get(
            self.source, self.tag, self.comm._deadline)
        np.copyto(self.buf, payload)


class _StubSendRequest:
    def wait(self) -> None:  # delivery happened at isend time
        pass


class StubComm:
    """One rank's endpoint in a :class:`StubWorld`."""

    mode = "stub"
    tag_ub = 2 ** 31 - 1

    def __init__(self, world: StubWorld, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.size
        self.coords: Optional[Tuple[int, ...]] = None
        self._deadline = time.monotonic() + world.timeout

    def make_cart(self, grid_shape) -> "StubComm":
        out = StubComm(self.world, self.rank)
        out.coords = tuple(
            int(c) for c in np.unravel_index(self.rank, grid_shape))
        return out

    def isend(self, buf: np.ndarray, dest: int, tag: int):
        # copy at send time: rank memories are private, and the runner
        # may release its send buffer after waitall
        self.world.mailboxes[dest].put(self.rank, tag,
                                       np.array(buf, dtype=np.float64))
        return _StubSendRequest()

    def irecv(self, buf: np.ndarray, source: int, tag: int):
        return _StubRecvRequest(self, buf, source, tag)

    def waitall(self, requests) -> None:
        for req in requests:
            req.wait()

    def barrier(self) -> None:
        if self.world.aborted:
            raise StubAbort("stub world aborted")
        left = self._deadline - time.monotonic()
        if left <= 0:
            raise TimeoutError(f"stub rank {self.rank} barrier timed out")
        try:
            self.world.barrier.wait(left)
        except threading.BrokenBarrierError:
            if self.world.aborted:
                raise StubAbort("stub world aborted") from None
            raise TimeoutError(
                f"stub rank {self.rank} barrier broken (peer timed out "
                "or crashed)") from None

    # object collectives: two barrier generations bracket the slot
    # exchange so a fast rank can never overwrite a slot that a slow
    # rank has not read yet
    def bcast_obj(self, obj, root: int = 0):
        if self.rank == root:
            self.world.bcast_slot = obj
        self.barrier()
        out = self.world.bcast_slot
        self.barrier()
        return out

    def allgather_obj(self, obj) -> list:
        self.world.slots[self.rank] = obj
        self.barrier()
        out = list(self.world.slots)
        self.barrier()
        return out

    def abort(self, code: int = 1) -> None:
        self.world.abort()
