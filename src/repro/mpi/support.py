"""Availability probe and world detection for the MPI backend.

Mirrors the native tier's single cached probe
(:func:`repro.pipeline.native.native_support`): the backend registry,
the CLI, the executors and the tests all consult :func:`mpi_support` —
never ``import mpi4py`` directly — so "mpi4py not installed" surfaces
exactly once, as a one-line trace-noted fallback to fused.

Three modes:

``mpi4py``  the real thing — ``mpi4py.MPI`` imports and a launcher
            (``mpiexec``/``mpirun``) is findable (the launcher is not
            required when already *inside* an MPI world);
``stub``    ``REPRO_MPI_STUB=1``: ranks run as in-process threads over a
            queue-based transport with the same Isend/Irecv/Waitall
            surface (testing mode — the whole rank runner, tag scheme
            and gather protocol execute without mpi4py);
``none``    disabled by ``REPRO_NO_MPI=1``, or mpi4py absent.

:func:`in_mpi_world` detects whether this process was started by an MPI
launcher (OpenMPI / MPICH-Hydra / PMI environment markers) — the
executors self-exec under ``mpiexec`` only when *not* already in a
world, and ``python -m repro.mpi.rank`` refuses to double-launch.
"""

from __future__ import annotations

import os
import shutil
import threading
from typing import NamedTuple, Optional

__all__ = [
    "MpiSupport",
    "find_launcher",
    "in_mpi_world",
    "mpi_support",
    "reset_mpi_support",
    "world_size_hint",
]

#: environment markers set by the common launchers (OpenMPI, MPICH/
#: Hydra, Intel MPI, Slurm's PMI) — presence means "inside a world"
_WORLD_MARKERS = (
    "OMPI_COMM_WORLD_SIZE",
    "PMI_SIZE",
    "PMI_RANK",
    "MPI_LOCALNRANKS",
    "MV2_COMM_WORLD_SIZE",
)


class MpiSupport(NamedTuple):
    """Result of the cached mpi4py probe."""

    available: bool
    mode: str           # "mpi4py" | "stub" | "none"
    reason: str         # human-readable availability note
    version: Optional[str] = None
    launcher: Optional[str] = None   # mpiexec/mpirun path (mpi4py mode)


_support: Optional[MpiSupport] = None
_support_lock = threading.Lock()


def find_launcher() -> Optional[str]:
    """Path of the MPI launcher (``REPRO_MPIEXEC`` override, else
    ``mpiexec``/``mpirun`` on PATH), or ``None``."""
    override = os.environ.get("REPRO_MPIEXEC")
    if override:
        return override if os.sep in override else shutil.which(override)
    for name in ("mpiexec", "mpirun"):
        path = shutil.which(name)
        if path:
            return path
    return None


def in_mpi_world() -> bool:
    """True when this process was started by an MPI launcher."""
    return any(m in os.environ for m in _WORLD_MARKERS)


def world_size_hint() -> Optional[int]:
    """World size from the launcher environment, without touching
    ``MPI.Init`` (importing mpi4py initializes MPI, which is only safe
    when actually launched)."""
    for m in ("OMPI_COMM_WORLD_SIZE", "PMI_SIZE", "MV2_COMM_WORLD_SIZE"):
        v = os.environ.get(m)
        if v:
            try:
                return int(v)
            except ValueError:
                continue
    return None


def _probe() -> MpiSupport:
    if os.environ.get("REPRO_NO_MPI"):
        return MpiSupport(False, "none", "disabled by REPRO_NO_MPI")
    if os.environ.get("REPRO_MPI_STUB"):
        return MpiSupport(
            True, "stub",
            "REPRO_MPI_STUB: ranks run as in-process threads over the "
            "queue transport (testing mode)")
    try:
        import mpi4py
    except ImportError as e:
        return MpiSupport(
            False, "none",
            f"mpi4py unavailable ({e}); install the 'mpi' extra")
    version = getattr(mpi4py, "__version__", "0")
    launcher = find_launcher()
    if launcher is None and not in_mpi_world():
        return MpiSupport(
            False, "none",
            f"mpi4py {version} is importable but no mpiexec/mpirun "
            "launcher was found on PATH", version)
    return MpiSupport(True, "mpi4py", f"mpi4py {version}", version,
                      launcher)


def mpi_support() -> MpiSupport:
    """The single cached probe for MPI availability (process-wide;
    :func:`reset_mpi_support` re-probes after env changes)."""
    global _support
    sup = _support
    if sup is None:
        with _support_lock:
            sup = _support
            if sup is None:
                sup = _support = _probe()
    return sup


def reset_mpi_support() -> None:
    """Drop the cached probe result (re-reads env on next call)."""
    global _support
    with _support_lock:
        _support = None
