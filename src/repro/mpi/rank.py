"""Rank-side SPMD runner: lowered ``MpProgram``s over real Isend/Irecv.

Every rank executes the same schedule the shm workers prove correct
(:mod:`repro.runtime.worker`), with the queue transport replaced by
nonblocking point-to-point messages:

1. **post**      — ``Irecv`` one buffer per expected ``(dst node,
                   src node, read pos)`` message *before* anything is
                   sent, so even self- and same-rank messages match
                   without buffering surprises;
2. **send**      — gather pre-state payloads with the precomputed global
                   keys, ``Isend`` one message per (read, peer) pair;
3. **gather**    — fill each owned node's local read lanes from the
                   rank-private global arrays;
4. **barrier**   — the pre-commit barrier (kept for schedule parity with
                   the shm runtime; rank memories are private, so it
                   also pins the per-clause skew to one clause);
5. **interior**  — fused/native interior kernel + commit while messages
                   are in flight;
6. **drain**     — ``Waitall`` the receives, fill remote lanes;
7. **boundary**  — boundary kernel + commit; then ``Waitall`` the sends
                   (send buffers stay referenced until here).

Tags encode ``(seq, dst node, src node, pos)`` — the same key the shm
queues use — with the clause sequence number taken modulo
:data:`TAG_SEQ_WINDOW`.  The per-clause pre-commit barrier bounds rank
skew to a single clause, so a window of 16 can never alias.

Nodes attach to ranks round-robin (``node % size``) exactly like the
worker pool multiplexes nodes onto processes; with one rank per node and
a grid decomposition, ranks are additionally attached through a
Cartesian communicator whose dims match the decomposition's grid shape
(``reorder=False`` keeps cart ranks equal to linear node ids).

Because rank memories are private, a rank's copy of a global array is
authoritative exactly on the elements its nodes own — every remote read
lane arrives as a message.  The final allgather therefore exchanges only
``(flat write positions, values)`` per rank, after which every rank
holds the full post-state.

Run as a module this file is the in-world SPMD entry::

    mpiexec -n 4 python -m repro.mpi.rank            # E19/E13 selftest
    mpiexec -n P python -m repro.mpi.rank --job DIR  # launcher protocol
    mpiexec -n 2 python -m repro.mpi.rank --pingpong # calibration sweep

Without mpi4py the selftest runs on the stub transport (and says so).
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..runtime.stats import RuntimeStats
from ..runtime.worker import _commit, _compile_kernel, _flat, _index

__all__ = [
    "MpiJob",
    "TAG_SEQ_WINDOW",
    "encode_tag",
    "max_tag",
    "run_job",
]

#: clause-sequence window for tag encoding; per-clause barriers bound
#: rank skew to one clause, so aliasing needs 16 clauses of drift
TAG_SEQ_WINDOW = 16


def encode_tag(seq: int, dst_node: int, src_node: int, pos: int,
               pmax: int, nreads: int) -> int:
    """The message tag for one ``(run seq, dst, src, pos)`` key."""
    nr = max(1, nreads)
    return (((seq % TAG_SEQ_WINDOW) * pmax + dst_node) * pmax
            + src_node) * nr + pos


def max_tag(pmax: int, nreads: int) -> int:
    """Largest tag the encoding can produce for a program shape."""
    return encode_tag(TAG_SEQ_WINDOW - 1, pmax - 1, pmax - 1,
                      max(1, nreads) - 1, pmax, nreads)


@dataclass
class MpiJob:
    """Everything the ranks need for one launch (picklable)."""

    progs: tuple                    # MpProgram per clause
    flags: tuple                    # end-of-clause barrier flags
    repeat: int = 1
    swap: tuple = ()                # buffer pairs exchanged per step
    names: tuple = ()               # global array names shipped
    grid_shape: tuple = ()          # () = no Cartesian attachment
    timeout: float = 120.0
    fault_rank: int = -1            # test hook: this rank raises mid-run
    meta: dict = field(default_factory=dict)


class _RankInstall:
    """One clause's installed program on this rank: compiled kernel(s)
    plus the nodes attached here (``node % size == rank``) — the exact
    analogue of the shm worker's ``_Installed``."""

    def __init__(self, prog, rank: int, size: int):
        (self.token, self.flavor, self.source, self.nreads,
         self.write_name, self.my_nodes, native_source) = \
            prog.payload_for(rank, size)
        self.prog = prog
        self.rhs, self.guard = _compile_kernel(self.source)
        self.native_entry = None
        self.native_jit_s = 0.0
        if native_source is not None:
            from ..pipeline.native import compile_native_entry, native_support

            if native_support().available:
                try:
                    self.native_entry, self.native_jit_s = \
                        compile_native_entry(native_source)
                except Exception:
                    self.native_entry = None


def _zero_counts() -> Dict[str, int]:
    return {"sends": 0, "recvs": 0, "elements_sent": 0,
            "elements_received": 0, "local_updates": 0,
            "iterations": 0, "barriers": 0}


def _run_clause(comm, inst: _RankInstall, arrays, seq: int, counts,
                stats: RuntimeStats, phase: List[str],
                fault_rank: int = -1) -> None:
    """One clause of the overlap schedule on this rank (steps 1-7 of the
    module docstring)."""
    prog = inst.prog
    pmax, nreads = prog.pmax, prog.nreads
    my_nodes = inst.my_nodes

    # ---- post: Irecv every expected message before any send ---------------
    phase[0] = "post"
    recvs = []   # (request, dst node, read pos, buffer, fill lanes)
    rvals_by: Dict[int, np.ndarray] = {}
    for node in my_nodes:
        counts[node.p]["iterations"] += node.n
        if node.n:
            rvals_by[node.p] = np.empty((max(nreads, 0), node.n),
                                        dtype=np.float64)
        for r in node.reads:
            for src, fill in r.sources:
                buf = np.empty(int(fill.size), dtype=np.float64)
                tag = encode_tag(seq, node.p, int(src), r.pos, pmax, nreads)
                req = comm.irecv(buf, source=int(src) % comm.size, tag=tag)
                recvs.append((req, node.p, r.pos, buf, fill))

    # ---- send: pre-state payloads, one Isend per (read, peer) -------------
    phase[0] = "send"
    sends = []   # requests; payload buffers stay referenced alongside
    bufs = []
    for node in my_nodes:
        c = counts[node.p]
        for s in node.sends:
            c["iterations"] += s.count
            src_arr = arrays[s.name]
            flat_src = src_arr.reshape(-1)
            for q, key in s.peers:
                # fresh contiguous copy per send: valid until Waitall
                buf = flat_src[_flat(key, src_arr.shape)]
                tag = encode_tag(seq, int(q), node.p, s.pos, pmax, nreads)
                sends.append(comm.isend(buf, dest=int(q) % comm.size,
                                        tag=tag))
                bufs.append(buf)
                c["sends"] += 1
                c["elements_sent"] += int(buf.size)
                stats.send_count += 1
                stats.send_bytes += int(buf.nbytes)

    # ---- gather: local lanes from the rank-private global arrays ----------
    phase[0] = "gather"
    for node in my_nodes:
        if node.n == 0:
            continue
        rvals = rvals_by[node.p]
        for r in node.reads:
            vals = rvals[r.pos]
            if r.local_pos is None:
                vals[:] = arrays[r.name][_index(r.local_key)]
            elif r.local_pos.size:
                vals[r.local_pos] = arrays[r.name][_index(r.local_key)]

    if fault_rank == comm.rank and seq == 0:
        raise RuntimeError(
            f"injected fault on rank {comm.rank} (test hook)")

    # ---- pre-commit barrier ----------------------------------------------
    phase[0] = "barrier"
    t0 = time.perf_counter()
    comm.barrier()
    stats.barrier_s += time.perf_counter() - t0
    for node in my_nodes:
        counts[node.p]["barriers"] += 1

    # ---- interior kernels (messages still in flight) ----------------------
    phase[0] = "interior"
    t0 = time.perf_counter()
    for node in my_nodes:
        if node.n:
            _commit(inst, node, rvals_by[node.p], node.interior,
                    node.idx_interior, node.wkey_interior,
                    arrays[inst.write_name], counts[node.p], "int")
    stats.kernel_s += time.perf_counter() - t0

    # ---- drain: Waitall receives, fill remote lanes -----------------------
    phase[0] = "drain"
    comm.waitall([r[0] for r in recvs])
    for _req, p, pos, buf, fill in recvs:
        rvals_by[p][pos][fill] = buf
        counts[p]["recvs"] += 1
        counts[p]["elements_received"] += int(buf.size)
        stats.recv_count += 1
        stats.recv_bytes += int(buf.nbytes)

    # ---- boundary kernels -------------------------------------------------
    phase[0] = "boundary"
    t0 = time.perf_counter()
    for node in my_nodes:
        if node.n:
            _commit(inst, node, rvals_by[node.p], node.boundary,
                    node.idx_boundary, node.wkey_boundary,
                    arrays[inst.write_name], counts[node.p], "bnd")
    stats.kernel_s += time.perf_counter() - t0

    # ---- send completion (buffers released after this) --------------------
    phase[0] = "send-wait"
    comm.waitall(sends)
    del bufs


def _final_names(prog, job: MpiJob) -> Tuple[str, ...]:
    """Array names the content written by *prog* can end up under: the
    write name itself plus, under a time-loop buffer swap, its partner —
    the swap after the last step leaves the final commits under the
    partner's name.  The pipeline pass has already proven the pair
    placement-compatible, so the node -> positions map is identical
    under either name."""
    names = {prog.write_name}
    for a, b in job.swap:
        if prog.write_name == a:
            names.add(b)
        elif prog.write_name == b:
            names.add(a)
    return tuple(sorted(names))


def _contrib(insts, job: MpiJob, arrays) -> Dict[str, tuple]:
    """This rank's authoritative post-state: for every array name one
    ``(flat positions, values)`` pair covering the elements its nodes
    own.  Rank-private commits only ever touch owned positions, so the
    local values at those positions are the global truth."""
    out: Dict[str, List[np.ndarray]] = {}
    for inst in insts:
        for name in _final_names(inst.prog, job):
            shape = arrays[name].shape
            flats = out.setdefault(name, [])
            for node in inst.my_nodes:
                flats.append(_flat(node.wkey_interior, shape))
                flats.append(_flat(node.wkey_boundary, shape))
    final = {}
    for name, flats in out.items():
        flat = (np.concatenate(flats) if flats
                else np.zeros(0, dtype=np.int64))
        final[name] = (flat, arrays[name].reshape(-1)[flat].copy())
    return final


def run_job(comm, job: MpiJob, arrays: Dict[str, np.ndarray]):
    """Execute *job* SPMD on *comm* against rank-private *arrays*
    (mutated to the full post-state on **every** rank via the final
    allgather).  Returns ``(stats_by_rank, counts_by_rank)`` — the same
    lists on every rank, sorted by rank."""
    phase = ["install"]
    try:
        for prog in job.progs:
            need = max_tag(prog.pmax, prog.nreads)
            if need > comm.tag_ub:
                raise RuntimeError(
                    f"encoded tag space needs {need} but this MPI "
                    f"implementation guarantees only tag_ub={comm.tag_ub}")
        insts = [_RankInstall(prog, comm.rank, comm.size)
                 for prog in job.progs]
        nodes = sorted({nd.p for inst in insts for nd in inst.my_nodes})
        stats = RuntimeStats(
            rank=comm.rank, pid=os.getpid(), nodes=tuple(nodes),
            native=any(inst.native_entry is not None for inst in insts))
        counts = {p: _zero_counts() for p in nodes}
        t_start = time.perf_counter()
        nclauses = len(insts)
        seq = 0
        for step in range(job.repeat):
            for k, inst in enumerate(insts):
                _run_clause(comm, inst, arrays, seq, counts, stats,
                            phase, job.fault_rank)
                last = step == job.repeat - 1 and k == nclauses - 1
                if job.flags[k] and not last:
                    phase[0] = "barrier"
                    t0 = time.perf_counter()
                    comm.barrier()
                    stats.barrier_s += time.perf_counter() - t0
                seq += 1
            for a, b in job.swap:
                arrays[a], arrays[b] = arrays[b], arrays[a]
        stats.total_s = time.perf_counter() - t_start

        # ---- exchange authoritative post-state + observability ------------
        phase[0] = "collect"
        contrib = _contrib(insts, job, arrays)
        gathered = comm.allgather_obj((contrib, stats, counts))
    except BaseException as err:
        # never leave sibling ranks blocked: abort the world, then let
        # the failure surface (launcher exit code / stub thread record)
        try:
            comm.abort(1)
        except Exception:
            pass
        err._mpi_phase = phase[0]  # parent-side diagnosis
        raise
    for rank_contrib, _s, _c in gathered:
        for name, (flat, values) in rank_contrib.items():
            if flat.size:
                arrays[name].reshape(-1)[flat] = values
    stats_by_rank = sorted((s for _c2, s, _n in gathered),
                           key=lambda s: s.rank)
    counts_by_rank = [c for _c2, _s, c in gathered]
    return stats_by_rank, counts_by_rank


def attach(comm, job: MpiJob):
    """Cartesian attachment when the grid dims cover the world exactly
    (one rank per node); round-robin multiplexing otherwise."""
    if job.grid_shape:
        total = 1
        for g in job.grid_shape:
            total *= g
        if total == comm.size:
            return comm.make_cart(job.grid_shape)
    return comm


# ---------------------------------------------------------------------------
# module entry: --job (launcher protocol), --pingpong, selftest
# ---------------------------------------------------------------------------

def _main_job(comm, jobdir: str) -> int:
    if comm.rank == 0:
        with open(os.path.join(jobdir, "job.pkl"), "rb") as fh:
            job = pickle.load(fh)  # noqa: S301 — launcher-written file
        with np.load(os.path.join(jobdir, "env.npz")) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
    else:
        job = arrays = None
    job = comm.bcast_obj(job)
    arrays = comm.bcast_obj(arrays)
    arrays = {name: np.ascontiguousarray(arr, dtype=np.float64)
              for name, arr in arrays.items()}
    stats, counts = run_job(attach(comm, job), job, arrays)
    if comm.rank == 0:
        np.savez(os.path.join(jobdir, "result.npz"), **arrays)
        payload = {
            "stats": [s.as_dict() for s in stats],
            "counts": [{str(p): c for p, c in by.items()}
                       for by in counts],
        }
        with open(os.path.join(jobdir, "stats.json"), "w") as fh:
            json.dump(payload, fh)
    return 0


def _main_pingpong(comm, sizes, reps: int) -> int:
    """Rank 0 <-> rank 1 round-trip sweep; rank 0 prints one JSON object
    with per-size one-way seconds (the `repro calibrate` input)."""
    if comm.size < 2:
        if comm.rank == 0:
            print(json.dumps({"error": "pingpong needs >= 2 ranks"}))
        return 1
    points = []
    for n in sizes:
        buf = np.zeros(n, dtype=np.float64)
        # warmup exchange
        for _ in range(3):
            _exchange(comm, buf)
        t0 = time.perf_counter()
        for _ in range(reps):
            _exchange(comm, buf)
        dt = time.perf_counter() - t0
        points.append([int(n), dt / reps / 2.0])  # one-way
    comm.barrier()
    if comm.rank == 0:
        print(json.dumps({"points": points, "reps": reps,
                          "ranks": comm.size}))
    return 0


def _exchange(comm, buf: np.ndarray) -> None:
    if comm.rank == 0:
        comm.waitall([comm.isend(buf, dest=1, tag=7)])
        comm.waitall([comm.irecv(buf, source=1, tag=8)])
    elif comm.rank == 1:
        comm.waitall([comm.irecv(buf, source=0, tag=7)])
        comm.waitall([comm.isend(buf, dest=0, tag=8)])


def _selftest_job(pmax: int, n: int = 48):
    """E19 (2-D five-point stencil on a grid) + E13 (1-D stencil): the
    acceptance workloads, compiled exactly as the benchmarks do."""
    from ..codegen import compile_clause
    from ..codegen.nddist import compile_clause_nd_dist
    from ..core import (
        AffineF,
        Bounds,
        Clause,
        Const,
        IdentityF,
        IndexSet,
        Ref,
        SeparableMap,
    )
    from ..core.expr import BinOp
    from ..decomp import Block, GridDecomposition
    from ..runtime.lowering import lower_dist

    sides = {1: (1, 1), 2: (2, 1), 4: (2, 2), 8: (4, 2)}
    side = sides.get(pmax, (pmax, 1))

    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    e19 = Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )
    grid = GridDecomposition([Block(n, side[0]), Block(n, side[1])])
    plan19 = compile_clause_nd_dist(e19, {"T": grid, "S": grid})

    e13 = Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )
    plan13 = compile_clause(
        e13, {"A": Block(n, pmax), "B": Block(n, pmax)})

    rng = np.random.default_rng(2026)
    env = {
        "S": rng.random((n, n)), "T": np.zeros((n, n)),
        "A": np.zeros(n), "B": rng.random(n),
    }
    jobs = [
        ("E19", MpiJob(progs=(lower_dist(plan19.ir),), flags=(True,),
                       names=("S", "T"), grid_shape=grid.grid_shape),
         plan19, "T"),
        ("E13", MpiJob(progs=(lower_dist(plan13.ir),), flags=(True,),
                       names=("A", "B")),
         plan13, "A"),
    ]
    return jobs, env


def _fused_reference(plan, env, label: str) -> np.ndarray:
    from ..codegen import run_distributed
    from ..codegen.nddist import collect_nd, run_distributed_nd
    from ..core import copy_env

    if label == "E19":
        m = run_distributed_nd(plan, copy_env(env), backend="fused")
        return collect_nd(m, "T")
    m = run_distributed(plan, copy_env(env), backend="fused")
    return m.collect("A")


def _main_selftest(comm, stub: bool) -> int:
    jobs, env = _selftest_job(comm.size)
    ok = True
    for label, job, plan, write in jobs:
        arrays = {name: np.ascontiguousarray(env[name], dtype=np.float64)
                  .copy() for name in env}
        run_job(attach(comm, job), job, arrays)
        if comm.rank == 0:
            ref = _fused_reference(plan, env, label)
            same = bool(np.array_equal(arrays[write], ref))
            ok &= same
            mode = "stub" if stub else "mpi4py"
            print(f"repro.mpi selftest [{mode}] {label} P={comm.size}: "
                  f"bit-identical to fused: {same}")
    if comm.rank == 0:
        print("repro.mpi selftest:", "OK" if ok else "FAILED")
    comm.barrier()
    return 0 if ok else 1


def _stub_selftest(nranks: int) -> int:
    """Selftest without mpi4py: same runner, stub transport."""
    import threading

    from .transport import StubWorld

    world = StubWorld(nranks, timeout=120.0)
    codes = [0] * nranks
    threads = []
    for r in range(nranks):
        def body(r=r):
            codes[r] = _main_selftest(world.comm(r), stub=True)
        t = threading.Thread(target=body, name=f"repro-mpi-stub-{r}",
                             daemon=True)
        threads.append(t)
        t.start()
    for t in threads:
        t.join(180.0)
    return max(codes)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from .support import in_mpi_world, mpi_support

    ap = argparse.ArgumentParser(
        prog="python -m repro.mpi.rank",
        description="in-world SPMD entry of the MPI backend "
                    "(run under mpiexec -n P)")
    ap.add_argument("--job", metavar="DIR", default=None,
                    help="launcher protocol: load DIR/job.pkl + env.npz, "
                         "write DIR/result.npz + stats.json from rank 0")
    ap.add_argument("--pingpong", action="store_true",
                    help="alpha/beta calibration sweep between ranks 0 "
                         "and 1 (JSON on stdout)")
    ap.add_argument("--sizes", default="1,64,1024,8192,65536",
                    help="comma-separated message sizes for --pingpong")
    ap.add_argument("--reps", type=int, default=50)
    ap.add_argument("--np", dest="nranks", type=int, default=4,
                    help="stub rank count when run without mpi4py")
    args = ap.parse_args(argv)

    sup = mpi_support()
    if sup.mode == "mpi4py" or in_mpi_world():
        try:
            from .transport import world_comm

            comm = world_comm()
        except ImportError as e:
            print(f"error: launched under MPI but mpi4py is not "
                  f"importable: {e}", file=sys.stderr)
            return 2
        if args.job:
            return _main_job(comm, args.job)
        if args.pingpong:
            return _main_pingpong(
                comm, [int(s) for s in args.sizes.split(",")], args.reps)
        return _main_selftest(comm, stub=False)
    if args.job or args.pingpong:
        print(f"error: --job/--pingpong need an MPI world ({sup.reason})",
              file=sys.stderr)
        return 2
    print(f"note: {sup.reason}; running the selftest on the stub "
          f"transport with {args.nranks} thread-ranks", file=sys.stderr)
    return _stub_selftest(args.nranks)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
