"""Multi-dimensional decompositions as per-dimension products.

The paper presents its derivations for the one-dimensional clause "for
reasons of clarity" (Section 2.6); the index-set machinery is d-dimensional
throughout.  The standard lifting — also what HPF later standardized — is a
*product decomposition*: dimension ``d`` of the array is decomposed by a
1-D decomposition over the ``d``-th axis of a processor grid, and the
owning processor is the grid point ``(proc_0(i_0), .., proc_{d-1}(i_{d-1}))``
linearized row-major.

Undistributed dimensions use :class:`Collapsed` (a single grid axis point).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import Decomposition

__all__ = ["Collapsed", "GridDecomposition"]

Index = Tuple[int, ...]


class Collapsed(Decomposition):
    """A dimension that is not distributed: one grid coordinate, local
    index = global index."""

    kind = "collapsed"

    def __init__(self, n: int):
        super().__init__(n, 1)

    def proc(self, i: int) -> int:
        return 0

    def local(self, i: int) -> int:
        return i

    def proc_array(self, idx):
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return np.zeros(idx.shape, dtype=np.int64)

    def local_array(self, idx):
        import numpy as np

        return np.asarray(idx, dtype=np.int64)

    def global_index(self, p: int, l: int) -> int:
        if p != 0 or not (0 <= l < self.n):
            raise KeyError(f"no global element at (p={p}, l={l})")
        return l

    def owned(self, p: int) -> List[int]:
        return list(range(self.n))

    def local_size(self, p: int) -> int:
        return self.n


class GridDecomposition:
    """Product of per-dimension 1-D decompositions over a processor grid.

    ``dims[d]`` decomposes axis *d*; the grid has shape
    ``(dims[0].pmax, .., dims[k].pmax)`` and processors are numbered
    row-major, so the total processor count is the product of the per-axis
    counts.
    """

    kind = "grid"

    def __init__(self, dims: Sequence[Decomposition]):
        if not dims:
            raise ValueError("need at least one dimension")
        self.dims: Tuple[Decomposition, ...] = tuple(dims)
        self.shape: Tuple[int, ...] = tuple(d.n for d in self.dims)
        self.grid_shape: Tuple[int, ...] = tuple(d.pmax for d in self.dims)
        self.pmax = 1
        for g in self.grid_shape:
            self.pmax *= g

    @property
    def ndim(self) -> int:
        return len(self.dims)

    # -- grid numbering ----------------------------------------------------

    def grid_coord(self, p: int) -> Index:
        """Row-major grid coordinates of linear processor *p*."""
        if not (0 <= p < self.pmax):
            raise IndexError(f"processor {p} out of range 0:{self.pmax - 1}")
        coord = []
        for g in reversed(self.grid_shape):
            p, c = divmod(p, g)
            coord.append(c)
        return tuple(reversed(coord))

    def linear_proc(self, coord: Sequence[int]) -> int:
        p = 0
        for c, g in zip(coord, self.grid_shape):
            if not (0 <= c < g):
                raise IndexError(f"grid coordinate {coord} out of range")
            p = p * g + c
        return p

    # -- placement -----------------------------------------------------------

    def proc(self, idx: Sequence[int]) -> int:
        return self.linear_proc(tuple(d.proc(i) for d, i in zip(self.dims, idx)))

    def local(self, idx: Sequence[int]) -> Index:
        return tuple(d.local(i) for d, i in zip(self.dims, idx))

    def place(self, idx: Sequence[int]) -> Tuple[int, Index]:
        return self.proc(idx), self.local(idx)

    def global_index(self, p: int, l: Sequence[int]) -> Index:
        coord = self.grid_coord(p)
        return tuple(
            d.global_index(c, li) for d, c, li in zip(self.dims, coord, l)
        )

    def owned(self, p: int) -> List[Index]:
        """All global index tuples owned by *p*, lexicographic."""
        coord = self.grid_coord(p)
        per_dim = [d.owned(c) for d, c in zip(self.dims, coord)]
        out: List[Index] = []

        def rec(d: int, prefix: Tuple[int, ...]) -> None:
            if d == len(per_dim):
                out.append(prefix)
                return
            for i in per_dim[d]:
                rec(d + 1, prefix + (i,))

        rec(0, ())
        return out

    def local_shape(self, p: int) -> Index:
        coord = self.grid_coord(p)
        return tuple(d.local_size(c) for d, c in zip(self.dims, coord))

    def max_local_shape(self) -> Index:
        shapes = [self.local_shape(p) for p in range(self.pmax)]
        return tuple(
            max(s[d] for s in shapes) for d in range(self.ndim)
        )

    def cache_key(self):
        """Structural identity for compile-time caches; ``None`` (propagated
        from any per-axis decomposition that opts out) disables caching."""
        keys = tuple(d.cache_key() for d in self.dims)
        if any(k is None for k in keys):
            return None
        return (type(self).__name__,) + keys

    def validate(self) -> None:
        """Bijectivity check over the full product space (test helper)."""
        seen = set()
        import itertools

        for idx in itertools.product(*(range(n) for n in self.shape)):
            key = (self.proc(idx), self.local(idx))
            assert key not in seen, f"double placement at {idx}"
            seen.add(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(d) for d in self.dims)
        return f"GridDecomposition([{inner}])"
