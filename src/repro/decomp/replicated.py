"""Degenerate decompositions: replicated and single-owner.

The paper's framework treats any ``(proc, local)`` pair of functions as a
decomposition.  Two degenerate members are useful substrates:

* :class:`SingleOwner` — the whole structure on one processor (what a
  scalar or an undistributed array is); the Theorem 1 constant-access
  optimization makes exactly this shape cheap.
* :class:`Replicated` — every processor holds a full copy.  Strictly this
  is not a decomposition in the paper's bijective sense (an element has
  ``pmax`` placements); reads are always local and writes go to every
  copy.  It models broadcast scalars/coefficient tables and is what the
  future-work "overlapped decompositions" degenerate to at full overlap.
"""

from __future__ import annotations

from typing import List

from .base import Decomposition

__all__ = ["SingleOwner", "Replicated"]


class SingleOwner(Decomposition):
    """All elements owned by one processor ``owner``."""

    kind = "singleowner"

    def __init__(self, n: int, pmax: int, owner: int = 0):
        super().__init__(n, pmax)
        if not (0 <= owner < pmax):
            raise ValueError(f"owner {owner} out of range 0:{pmax - 1}")
        self.owner = int(owner)

    def proc(self, i: int) -> int:
        return self.owner

    def local(self, i: int) -> int:
        return i

    def proc_array(self, idx):
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return np.full(idx.shape, self.owner, dtype=np.int64)

    def local_array(self, idx):
        import numpy as np

        return np.asarray(idx, dtype=np.int64)

    def global_index(self, p: int, l: int) -> int:
        if p != self.owner or not (0 <= l < self.n):
            raise KeyError(f"no global element at (p={p}, l={l})")
        return l

    def owned(self, p: int) -> List[int]:
        return list(range(self.n)) if p == self.owner else []

    def local_size(self, p: int) -> int:
        return self.n if p == self.owner else 0

    def cache_key(self):
        return (type(self).__name__, self.n, self.pmax, self.owner)


class Replicated(Decomposition):
    """Every processor holds a full copy.

    ``proc``/``local`` report the canonical copy (processor 0); the
    machine templates special-case ``is_replicated`` so reads never
    communicate and writes update all copies.
    """

    kind = "replicated"
    is_replicated = True

    def proc(self, i: int) -> int:
        return 0

    def local(self, i: int) -> int:
        return i

    def proc_array(self, idx):
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return np.zeros(idx.shape, dtype=np.int64)

    def local_array(self, idx):
        import numpy as np

        return np.asarray(idx, dtype=np.int64)

    def global_index(self, p: int, l: int) -> int:
        if not (0 <= l < self.n):
            raise KeyError(f"no global element at (p={p}, l={l})")
        return l

    def owned(self, p: int) -> List[int]:
        return list(range(self.n))

    def local_size(self, p: int) -> int:
        return self.n

    def validate(self) -> None:
        # Replication intentionally breaks the bijection; nothing to check
        # beyond range sanity.
        for i in range(self.n):
            assert 0 <= self.local(i) < self.n
