"""Decomposition interface (paper Section 2.6).

A decomposition of a one-dimensional data structure ``A`` with index set
``0:n-1`` over ``pmax`` processors is the pair of total functions

    ``proc : 0:n-1 -> 0:pmax-1``  and  ``local : 0:n-1 -> 0:k``

allocating each element to a processor and a local-memory slot.  In V-cal
terms this is the view ``V = (∅, dp, ip)`` with
``ip(j) = (proc(j), local(j))`` that replaces ``A`` by its machine image
``A'`` (Eq. (2)).

The interface also exposes the inverse ``global_index(p, l)`` and the owned
set per processor, which the distributed-memory template and the
redistribution generator need.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..core.indexset import IndexSet
from ..core.view import GeneralMap, View

__all__ = ["Decomposition"]


class Decomposition:
    """Mapping of the global index range ``0:n-1`` onto ``pmax`` processors."""

    #: short class tag used in reports ("block", "scatter", "blockscatter", ...)
    kind: str = "abstract"

    #: True for fully replicated structures (reads always local)
    is_replicated: bool = False

    def __init__(self, n: int, pmax: int):
        if n < 0:
            raise ValueError("n must be >= 0")
        if pmax < 1:
            raise ValueError("pmax must be >= 1")
        self.n = int(n)
        self.pmax = int(pmax)

    # -- the two defining functions -----------------------------------------

    def proc(self, i: int) -> int:
        """Owning processor of global element *i*."""
        raise NotImplementedError

    def local(self, i: int) -> int:
        """Local-memory slot of global element *i* on ``proc(i)``."""
        raise NotImplementedError

    # -- vectorized forms ----------------------------------------------------

    def proc_array(self, idx):
        """``proc`` over an integer ndarray.

        Subclasses with closed-form placement override this with pure
        array arithmetic; the default evaluates element-wise (correct for
        any decomposition, used only by the vector executor's fallback).
        """
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return np.fromiter(
            (self.proc(int(i)) for i in idx.ravel()),
            dtype=np.int64, count=idx.size,
        ).reshape(idx.shape)

    def local_array(self, idx):
        """``local`` over an integer ndarray (see :meth:`proc_array`)."""
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return np.fromiter(
            (self.local(int(i)) for i in idx.ravel()),
            dtype=np.int64, count=idx.size,
        ).reshape(idx.shape)

    # -- caching ---------------------------------------------------------------

    def cache_key(self) -> Tuple:
        """Structural identity for compile-time caches (Table I memoization,
        the compiled-plan cache).  Two decompositions with equal keys must
        have identical ``proc``/``local`` behaviour; subclasses carrying
        extra parameters extend the tuple.  Return ``None`` to opt a
        decomposition out of caching (e.g. behaviour driven by mutable or
        opaque state)."""
        return (type(self).__name__, self.n, self.pmax)

    # -- derived ---------------------------------------------------------------

    def place(self, i: int) -> Tuple[int, int]:
        """``ip(i) = (proc(i), local(i))``."""
        self._check(i)
        return self.proc(i), self.local(i)

    def global_index(self, p: int, l: int) -> int:
        """Inverse of :meth:`place`.

        Default implementation scans the owned set; subclasses override
        with closed forms.
        """
        for i in self.owned(p):
            if self.local(i) == l:
                return i
        raise KeyError(f"no global element at (p={p}, l={l})")

    def owned(self, p: int) -> List[int]:
        """Global indices owned by processor *p*, increasing.

        Default is the naive scan; subclasses provide closed forms.
        """
        return [i for i in range(self.n) if self.proc(i) == p]

    def local_size(self, p: int) -> int:
        """Number of local slots processor *p* needs (1 + max local index,
        so that ``local`` values index a dense local array)."""
        mx = -1
        for i in self.owned(p):
            mx = max(mx, self.local(i))
        return mx + 1

    def max_local_size(self) -> int:
        return max((self.local_size(p) for p in range(self.pmax)), default=0)

    def layout(self) -> List[int]:
        """``proc(i)`` for every i — the Fig. 2 row for this decomposition."""
        return [self.proc(i) for i in range(self.n)]

    def as_view(self) -> View:
        """The decomposition as a V-cal view ``(∅, dp, ip)`` with
        ``ip(j) = (proc(j), local(j))`` (Section 2.6)."""
        K = IndexSet.of_shape(self.pmax, self.max_local_size())
        ip = GeneralMap(lambda j: self.place(j[0]), f"(proc,local)[{self.kind}]")
        return View(K, ip, dp_name="l*u")

    # -- validation ---------------------------------------------------------------

    def _check(self, i: int) -> None:
        if not (0 <= i < self.n):
            raise IndexError(f"global index {i} out of range 0:{self.n - 1}")

    def validate(self) -> None:
        """Check the decomposition is a bijection onto (proc, local) pairs
        with dense local numbering per processor.  O(n); test helper."""
        seen = set()
        per_proc: dict[int, List[int]] = {}
        for i in range(self.n):
            p, l = self.place(i)
            if not (0 <= p < self.pmax):
                raise AssertionError(f"proc({i})={p} out of range")
            if l < 0:
                raise AssertionError(f"local({i})={l} negative")
            if (p, l) in seen:
                raise AssertionError(f"(p,l)=({p},{l}) assigned twice")
            seen.add((p, l))
            per_proc.setdefault(p, []).append(l)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, pmax={self.pmax})"
