"""Block-scatter decomposition ``BS(b)`` (paper Section 3.2, Fig. 2a).

The data is split into blocks of ``b`` consecutive elements; blocks are
dealt round-robin over the processors:

    ``proc(i)  = (i div b) mod pmax``
    ``local(i) = b.(i div (b.pmax)) + i mod b``

The paper's ``local`` is written ``b.(i div m.pmax) + i mod b`` with the
block size appearing as ``m`` — the course (round) index times the block
size plus the offset within the block, which is what we implement.

Block (Fig. 2b) and scatter (Fig. 2c) are the specializations
``b = ceil(n/pmax)`` and ``b = 1``.
"""

from __future__ import annotations

from typing import List

from ..core.ifunc import ceil_div
from .base import Decomposition

__all__ = ["BlockScatter"]


class BlockScatter(Decomposition):
    """``BS(b)``: blocks of *b* elements scattered round-robin."""

    kind = "blockscatter"

    def __init__(self, n: int, pmax: int, b: int):
        super().__init__(n, pmax)
        if b < 1:
            raise ValueError("block size b must be >= 1")
        self.b = int(b)

    def proc(self, i: int) -> int:
        return (i // self.b) % self.pmax

    def local(self, i: int) -> int:
        course = i // (self.b * self.pmax)
        return self.b * course + i % self.b

    # The same formulas broadcast over ndarrays; Block and Scatter inherit
    # these (their proc/local are the b = ceil(n/pmax) and b = 1 cases).
    def proc_array(self, idx):
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return (idx // self.b) % self.pmax

    def local_array(self, idx):
        import numpy as np

        idx = np.asarray(idx, dtype=np.int64)
        return self.b * (idx // (self.b * self.pmax)) + idx % self.b

    def global_index(self, p: int, l: int) -> int:
        course, off = divmod(l, self.b)
        i = (course * self.pmax + p) * self.b + off
        if not (0 <= i < self.n) or self.local(i) != l or self.proc(i) != p:
            raise KeyError(f"no global element at (p={p}, l={l})")
        return i

    def owned(self, p: int) -> List[int]:
        out: List[int] = []
        stride = self.b * self.pmax
        start = p * self.b
        for base in range(start, self.n, stride):
            out.extend(range(base, min(base + self.b, self.n)))
        return out

    def local_size(self, p: int) -> int:
        own = self.owned(p)
        return (self.local(own[-1]) + 1) if own else 0

    def courses(self) -> int:
        """Number of rounds of block dealing (the ``k`` range extent)."""
        return ceil_div(self.n, self.b * self.pmax)

    def cache_key(self):
        return (type(self).__name__, self.n, self.pmax, self.b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockScatter(n={self.n}, pmax={self.pmax}, b={self.b})"
