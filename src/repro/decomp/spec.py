"""A textual decomposition-specification language.

The paper's central premise is that decompositions are specified
*separately* from the program ("a separately specified decomposition of
the data").  This module gives that specification a concrete, versionable
syntax::

    # one statement per array; '#' comments
    distribute A[24](block) on 4;
    distribute B[48](scatter) on 4;
    distribute C[24](blockscatter(2)) on 4;
    distribute D[24](replicated) on 4;
    distribute E[24](single(1)) on 4;
    distribute H[24](overlapped(1)) on 4;          # halo width 1
    distribute M[8, 6](block, scatter) on 2 x 3;   # processor grid
    distribute N[8, 6](block, collapsed) on 2;     # undistributed axis

Kinds: ``block[(b)]``, ``scatter``, ``blockscatter(b)``, ``single(owner)``,
``replicated``, ``overlapped(halo[, b])``, ``collapsed`` (grid axes only).
Changing the parallelization of a program is editing this file — never
the program text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from .base import Decomposition
from .block import Block
from .blockscatter import BlockScatter
from .multidim import Collapsed, GridDecomposition
from .overlap import OverlappedBlock
from .replicated import Replicated, SingleOwner
from .scatter import Scatter

__all__ = ["SpecError", "parse_spec", "parse_distribution"]

AnyDec = Union[Decomposition, GridDecomposition]


class SpecError(ValueError):
    """Malformed decomposition specification."""


_STMT = re.compile(
    r"""^distribute\s+
        (?P<name>[A-Za-z_]\w*)\s*
        \[(?P<shape>[^\]]+)\]\s*
        \((?P<kinds>[^)]*(?:\([^)]*\))?[^)]*)\)\s*
        on\s+(?P<grid>[0-9]+(?:\s*x\s*[0-9]+)*)\s*$""",
    re.VERBOSE,
)

_KIND = re.compile(r"^(?P<kind>[a-z]+)(?:\((?P<args>[^)]*)\))?$")


def _split_kinds(text: str) -> List[str]:
    """Split 'block, blockscatter(2)' respecting parentheses."""
    out, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur).strip())
    return [k for k in out if k]


def _axis(kind_text: str, n: int, pmax: int) -> Decomposition:
    m = _KIND.match(kind_text.strip())
    if not m:
        raise SpecError(f"bad distribution kind {kind_text!r}")
    kind = m.group("kind")
    args = [int(a) for a in m.group("args").split(",")] if m.group("args") \
        else []
    if kind == "block":
        return Block(n, pmax, b=args[0] if args else None)
    if kind == "scatter":
        return Scatter(n, pmax)
    if kind == "blockscatter":
        if not args:
            raise SpecError("blockscatter needs a block size")
        return BlockScatter(n, pmax, args[0])
    if kind == "single":
        return SingleOwner(n, pmax, args[0] if args else 0)
    if kind == "replicated":
        return Replicated(n, pmax)
    if kind == "overlapped":
        if not args:
            raise SpecError("overlapped needs a halo width")
        return OverlappedBlock(n, pmax, halo=args[0],
                               b=args[1] if len(args) > 1 else None)
    if kind == "collapsed":
        if pmax != 1:
            raise SpecError("a collapsed axis takes one grid point")
        return Collapsed(n)
    raise SpecError(f"unknown distribution kind {kind!r}")


def parse_distribution(line: str) -> Tuple[str, AnyDec]:
    """Parse one ``distribute`` statement (without trailing ';')."""
    m = _STMT.match(line.strip())
    if not m:
        raise SpecError(f"cannot parse distribution statement: {line!r}")
    name = m.group("name")
    shape = [int(s) for s in m.group("shape").split(",")]
    kinds = _split_kinds(m.group("kinds"))
    grid = [int(g) for g in re.split(r"\s*x\s*", m.group("grid"))]

    if len(kinds) != len(shape):
        raise SpecError(
            f"{name}: {len(shape)} dimensions but {len(kinds)} kinds"
        )
    # collapsed axes consume no grid factor
    per_axis_p: List[int] = []
    gi = 0
    for k in kinds:
        if k.startswith("collapsed"):
            per_axis_p.append(1)
        else:
            if gi >= len(grid):
                raise SpecError(
                    f"{name}: not enough grid factors for the distributed "
                    f"axes"
                )
            per_axis_p.append(grid[gi])
            gi += 1
    if gi != len(grid):
        raise SpecError(f"{name}: {len(grid) - gi} unused grid factor(s)")

    if len(shape) == 1:
        return name, _axis(kinds[0], shape[0], per_axis_p[0])
    axes = [_axis(k, n, p) for k, n, p in zip(kinds, shape, per_axis_p)]
    return name, GridDecomposition(axes)


def parse_spec(text: str) -> Dict[str, AnyDec]:
    """Parse a whole specification file into ``{array: decomposition}``."""
    out: Dict[str, AnyDec] = {}
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        for stmt in line.split(";"):
            stmt = stmt.strip()
            if not stmt:
                continue
            name, dec = parse_distribution(stmt)
            if name in out:
                raise SpecError(f"array {name!r} distributed twice")
            out[name] = dec
    return out
