"""Dynamic decompositions: automatically generated redistribution plans.

The paper's introduction criticizes systems where "redistribution
statements are not generated automatically and are intermingled with the
program code" and lists dynamic decompositions as the target of further
research (Section 5).  We implement the natural V-cal answer: given a
source decomposition ``D1`` and target ``D2`` of the same structure, the
communication set is derived purely from the two views —

    element ``i`` moves ``D1.place(i) -> D2.place(i)`` whenever the owning
    processors differ,

and per-processor-pair transfers are coalesced into messages.  The plan is
machine-independent data; :mod:`repro.codegen.redistribute` turns it into
node programs for the simulated machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .base import Decomposition

__all__ = ["Transfer", "RedistributionPlan", "plan_redistribution"]


@dataclass(frozen=True)
class Transfer:
    """One element's move: global index plus source/target placements."""

    global_index: int
    src_proc: int
    src_local: int
    dst_proc: int
    dst_local: int


@dataclass
class RedistributionPlan:
    """All transfers needed to change a structure from ``src`` to ``dst``.

    ``messages[(p, q)]`` lists the (src_local, dst_local, global_index)
    triples processor ``p`` must ship to processor ``q``; ``stay[p]`` lists
    the (src_local, dst_local) pairs that merely move within ``p``'s own
    memory.
    """

    src: Decomposition
    dst: Decomposition
    messages: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = field(
        default_factory=dict
    )
    stay: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    # -- statistics the benchmarks report ---------------------------------

    def moved_elements(self) -> int:
        return sum(len(v) for v in self.messages.values())

    def message_count(self) -> int:
        return len(self.messages)

    def stay_elements(self) -> int:
        return sum(len(v) for v in self.stay.values())

    def volume_by_pair(self) -> Dict[Tuple[int, int], int]:
        return {k: len(v) for k, v in self.messages.items()}

    def max_fan_out(self) -> int:
        """Largest number of distinct destinations any processor sends to."""
        fan: Dict[int, int] = {}
        for (p, _q) in self.messages:
            fan[p] = fan.get(p, 0) + 1
        return max(fan.values(), default=0)


def plan_redistribution(src: Decomposition, dst: Decomposition) -> RedistributionPlan:
    """Derive the full redistribution plan ``src -> dst``.

    Both decompositions must cover the same global range.  O(n).
    """
    if src.n != dst.n:
        raise ValueError(f"size mismatch: src n={src.n}, dst n={dst.n}")
    if src.pmax != dst.pmax:
        raise ValueError(
            f"processor count mismatch: src pmax={src.pmax}, dst pmax={dst.pmax}"
        )
    plan = RedistributionPlan(src, dst)
    for i in range(src.n):
        sp, sl = src.place(i)
        dp, dl = dst.place(i)
        if sp == dp:
            plan.stay.setdefault(sp, []).append((sl, dl))
        else:
            plan.messages.setdefault((sp, dp), []).append((sl, dl, i))
    return plan
