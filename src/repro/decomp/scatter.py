"""Scatter (cyclic) decomposition (paper Section 3.2.iii, Fig. 2c).

``BS(1)``: element *i* lives on processor ``i mod pmax`` at local slot
``i div pmax``.
"""

from __future__ import annotations

from typing import List

from .blockscatter import BlockScatter

__all__ = ["Scatter"]


class Scatter(BlockScatter):
    """Cyclic decomposition: ``proc(i) = i mod pmax``,
    ``local(i) = i div pmax``."""

    kind = "scatter"

    def __init__(self, n: int, pmax: int):
        super().__init__(n, pmax, 1)

    def proc(self, i: int) -> int:
        return i % self.pmax

    def local(self, i: int) -> int:
        return i // self.pmax

    def global_index(self, p: int, l: int) -> int:
        i = l * self.pmax + p
        if not (0 <= i < self.n):
            raise KeyError(f"no global element at (p={p}, l={l})")
        return i

    def owned(self, p: int) -> List[int]:
        return list(range(p, self.n, self.pmax))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scatter(n={self.n}, pmax={self.pmax})"
