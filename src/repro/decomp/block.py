"""Block decomposition (paper Section 3.2.ii, Fig. 2b).

The paper defines block as the ``BS(b)`` special case whose single course
covers all the data: ``pmax.b >= n`` with ``b = ceil(n/pmax)``.  Then
``proc(i) = i div b`` and ``local(i) = i mod b``, and the course parameter
``k`` vanishes (``k_max = 0``).
"""

from __future__ import annotations

from typing import List

from ..core.ifunc import ceil_div
from .blockscatter import BlockScatter

__all__ = ["Block"]


class Block(BlockScatter):
    """Contiguous block decomposition: processor *p* owns
    ``[p.b, min((p+1).b, n) - 1]`` with ``b = ceil(n/pmax)`` (or an explicit
    block size covering all data in one course)."""

    kind = "block"

    def __init__(self, n: int, pmax: int, b: int | None = None):
        if b is None:
            b = max(1, ceil_div(n, pmax)) if n else 1
        if b * pmax < n:
            raise ValueError(
                f"block size {b} too small: {pmax} processors cover only "
                f"{b * pmax} < {n} elements in one course"
            )
        super().__init__(n, pmax, b)

    # Single-course closed forms (identical results to BlockScatter's, but
    # worth keeping explicit: they are the formulas the paper quotes).

    def proc(self, i: int) -> int:
        return i // self.b

    def local(self, i: int) -> int:
        return i % self.b

    def global_index(self, p: int, l: int) -> int:
        i = p * self.b + l
        if not (0 <= i < self.n) or not (0 <= l < self.b):
            raise KeyError(f"no global element at (p={p}, l={l})")
        return i

    def owned(self, p: int) -> List[int]:
        lo = p * self.b
        hi = min(lo + self.b, self.n)
        return list(range(lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(n={self.n}, pmax={self.pmax}, b={self.b})"
