"""Data decompositions (paper Sections 2.6, 3.2, Fig. 2).

Every decomposition is a pair ``(proc, local)`` of total functions placing
each global index on a (processor, local-slot) pair — the view the paper
substitutes for a data structure to obtain SPMD programs.
"""

from .base import Decomposition
from .block import Block
from .blockscatter import BlockScatter
from .dynamic import RedistributionPlan, Transfer, plan_redistribution
from .multidim import Collapsed, GridDecomposition
from .overlap import HaloTransfer, OverlappedBlock, halo_exchange_plan
from .replicated import Replicated, SingleOwner
from .scatter import Scatter
from .spec import SpecError, parse_distribution, parse_spec

__all__ = [
    "Decomposition",
    "Block",
    "BlockScatter",
    "Scatter",
    "SingleOwner",
    "Replicated",
    "Collapsed",
    "GridDecomposition",
    "OverlappedBlock",
    "HaloTransfer",
    "halo_exchange_plan",
    "RedistributionPlan",
    "Transfer",
    "plan_redistribution",
    "parse_spec",
    "parse_distribution",
    "SpecError",
]
