"""repro — reproduction of *Automatic Parallel Program Generation and
Optimization from Data Decompositions* (Paalvast, Sips & van Gemund,
ICPP 1991).

The package implements the paper's V-cal view calculus, data
decompositions (block / scatter / block-scatter and extensions), the
compile-time membership-set optimizations of Table I, SPMD program
generation for shared- and distributed-memory machines, and deterministic
simulated machines to execute the generated programs on.

Typical use::

    from repro import (
        translate_source, compile_clause, run_distributed,
        Block, Scatter, evaluate_program, copy_env,
    )

    prog = translate_source('''
        for i := 0 to n - 1 par do
            A[i] := B[2 * i + 1] + 1;
        od;
    ''', params={"n": 50})
    plan = compile_clause(prog.clauses[0], {"A": Block(50, 4),
                                            "B": Scatter(100, 4)})
    machine = run_distributed(plan, {"A": a0, "B": b0})
    result = machine.collect("A")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from .analysis import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    verify_clause,
)
from .backends import UnknownBackendError, backend_names, validate_backend
from .baselines import run_distributed_naive, run_shared_naive
from .codegen import (
    SPMDPlan,
    compile_clause,
    compile_distributed,
    compile_shared,
    emit_distributed_source,
    emit_shared_source,
    run_distributed,
    run_redistribution,
    run_shared,
)
from .core import (
    PAR,
    SEQ,
    AffineF,
    BinOp,
    Bounds,
    Clause,
    Const,
    ConstantF,
    Expr,
    IdentityF,
    IFunc,
    IndexSet,
    LoopIndex,
    ModularF,
    MonotoneF,
    Ordering,
    Predicate,
    Program,
    Ref,
    SeparableMap,
    View,
    copy_env,
    evaluate_clause,
    evaluate_program,
)
from .decomp import (
    Block,
    BlockScatter,
    Decomposition,
    GridDecomposition,
    OverlappedBlock,
    Replicated,
    Scatter,
    SingleOwner,
    plan_redistribution,
)
from .frontend import parse, translate, translate_source
from .machine import DistributedMachine, MachineStats, SharedMachine
from .pipeline import clear_plan_cache, plan_cache_info
from .runtime import (
    MpMachine,
    RuntimeStats,
    WorkerCrashError,
    run_distributed_mp,
    run_shared_mp,
    shutdown_runtime,
)
from .sets import Work, modify_naive, optimize_access

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core calculus
    "Bounds", "IndexSet", "Predicate", "View", "SeparableMap",
    "IFunc", "ConstantF", "AffineF", "IdentityF", "MonotoneF", "ModularF",
    "Expr", "Const", "LoopIndex", "Ref", "BinOp",
    "Clause", "Program", "Ordering", "SEQ", "PAR",
    "evaluate_clause", "evaluate_program", "copy_env",
    # decompositions
    "Decomposition", "Block", "Scatter", "BlockScatter", "SingleOwner",
    "Replicated", "GridDecomposition", "OverlappedBlock",
    "plan_redistribution",
    # membership sets
    "Work", "modify_naive", "optimize_access",
    # codegen
    "SPMDPlan", "compile_clause", "run_shared", "run_distributed",
    "compile_shared", "compile_distributed",
    "emit_shared_source", "emit_distributed_source", "run_redistribution",
    # static analysis
    "Diagnostic", "DiagnosticReport", "Severity", "verify_clause",
    # backend registry
    "UnknownBackendError", "backend_names", "validate_backend",
    # multi-process runtime
    "MpMachine", "RuntimeStats", "WorkerCrashError",
    "run_distributed_mp", "run_shared_mp", "shutdown_runtime",
    # plan cache
    "clear_plan_cache", "plan_cache_info",
    # baselines
    "run_shared_naive", "run_distributed_naive",
    # machines
    "SharedMachine", "DistributedMachine", "MachineStats",
    # frontend
    "parse", "translate", "translate_source",
]
