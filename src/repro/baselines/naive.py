"""The unoptimized "elementary program" (paper Section 3 intro).

This is the baseline every Section 3 optimization is measured against:
node programs that loop over the **full** index range and decide
membership with run-time ``proc(f(i)) = p`` tests — worst-case
``imax - imin + 1`` iterations with tests per node while only
``(imax - imin)/p`` indices are actually processed per node.

Both machine models are provided; semantics are identical to the
optimized templates, only the overhead differs, which is exactly what the
E10 benchmark shows.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.clause import Ordering
from ..machine.distributed import DistributedMachine, NodeContext
from ..machine.shared import SharedMachine
from .. codegen.dist_tmpl import _eval_fetched, _read_value
from ..codegen.plan import SPMDPlan

__all__ = ["run_shared_naive", "run_distributed_naive", "make_naive_node_program"]


def run_shared_naive(
    plan: SPMDPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
) -> SharedMachine:
    """Section 2.9 template with run-time membership tests over the full
    range on every node."""
    if plan.clause.ordering is Ordering.SEQ:
        raise NotImplementedError("naive baseline implements // clauses")
    if machine is None:
        machine = SharedMachine(plan.pmax, env)
    clause = plan.clause

    def phase(p: int) -> List[Tuple[str, int, float]]:
        writes: List[Tuple[str, int, float]] = []
        st = machine.stats[p]
        for i in range(plan.imin, plan.imax + 1):
            st.iterations += 1
            st.membership_tests += 1
            if not plan.write_replicated:
                if plan.write_dec.proc(plan.write_func(i)) != p:
                    continue
            idx = (i,)
            if clause.guard is not None and not clause.guard.eval(idx, machine.env):
                continue
            ai = clause.lhs.array_index(idx)[0]
            writes.append((clause.lhs.name, ai, clause.rhs.eval(idx, machine.env)))
        return writes

    machine.run_phase(phase)
    return machine


def make_naive_node_program(plan: SPMDPlan, ctx: NodeContext) -> Generator:
    """Distributed §2.10 template, literal form: one full-range loop with
    the three membership cases tested per index."""

    def program() -> Generator:
        p = ctx.p
        clause = plan.clause

        # The paper's single All_p loop is split into a send sweep and an
        # update sweep for the same deadlock-freedom reason as the
        # optimized template; each sweep scans the FULL range and tests.
        for read in plan.reads:
            if read.always_local:
                continue
            for i in range(plan.imin, plan.imax + 1):
                ctx.stats.iterations += 1
                ctx.stats.membership_tests += 1
                if read.dec.proc(read.func(i)) != p:
                    continue  # not in Reside_p
                for q in plan.writers_of(i):
                    ctx.stats.membership_tests += 1
                    if q != p:
                        ctx.send(q, (read.pos, i), _read_value(ctx, read, i))

        # Buffered writes: same //-independence discipline as the
        # optimized template (see dist_tmpl).
        pending = []
        for i in range(plan.imin, plan.imax + 1):
            ctx.stats.iterations += 1
            ctx.stats.membership_tests += 1
            if not plan.write_replicated:
                if plan.write_dec.proc(plan.write_func(i)) != p:
                    continue  # not in Modify_p
            by_ref: Dict[int, float] = {}
            for read in plan.reads:
                ctx.stats.membership_tests += 1
                if read.always_local or read.dec.proc(read.func(i)) == p:
                    by_ref[id(read.ref)] = _read_value(ctx, read, i)
                else:
                    src = read.dec.proc(read.func(i))
                    payload = yield ctx.recv(src, (read.pos, i))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
            idx = (i,)
            if clause.guard is not None and not _eval_fetched(
                clause.guard, idx, by_ref
            ):
                continue
            gi = plan.write_func(i)
            slot = gi if plan.write_replicated else plan.write_dec.local(gi)
            pending.append((slot, _eval_fetched(clause.rhs, idx, by_ref)))
        for slot, value in pending:
            ctx.update(plan.write_name, slot, value)

        yield ctx.barrier()

    return program()


def run_distributed_naive(
    plan: SPMDPlan,
    env: Dict[str, np.ndarray],
) -> DistributedMachine:
    """Place, run, and return the machine for the naive distributed
    template."""
    if plan.clause.ordering is Ordering.SEQ:
        raise NotImplementedError("naive baseline implements // clauses")
    machine = DistributedMachine(plan.pmax)
    all_decomps = {plan.write_name: plan.write_dec}
    for read in plan.reads:
        all_decomps[read.name] = read.dec
    for name, arr in env.items():
        if name in all_decomps:
            machine.place(name, arr, all_decomps[name])
    machine.run(lambda ctx: make_naive_node_program(plan, ctx))
    return machine
