"""Baselines: the unoptimized elementary SPMD programs of Section 3."""

from .naive import make_naive_node_program, run_distributed_naive, run_shared_naive

__all__ = ["run_shared_naive", "run_distributed_naive", "make_naive_node_program"]
