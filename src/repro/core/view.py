"""Views and view composition (paper Definitions 3-5).

A view ``V = (K, dp, ip)`` consists of an index set ``K``, a monotone
function ``dp`` on bound vectors, and an integer total index-propagation
function ``ip``.  Applying ``V`` to an index set ``I = (b_I, P_I)`` yields

    ``J = (b_K & dp(b_I), (P_I ∘ ip) ∧ P_K)``        (Definition 4)

and composition obeys (Definition 5)

    ``ip_u = ip_w ∘ ip_v``, ``dp_u = dp_v ∘ dp_w``,
    ``b_u = b_Kv & dp_v(b_Kw)``, ``P_u = (P_Kw ∘ ip_v) ∧ P_Kv``.

Index-propagation functions over d-tuples are represented by
:class:`SeparableMap` (one scalar :class:`~repro.core.ifunc.IFunc` per
dimension — the class every Section 3 optimization applies to) or by
:class:`GeneralMap` for arbitrary callables.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from .bounds import Bounds
from .ifunc import IFunc, IdentityF
from .indexset import Index, IndexSet, Predicate, TRUE

__all__ = [
    "IndexMap",
    "SeparableMap",
    "ProjectedMap",
    "GeneralMap",
    "identity_map",
    "View",
]


class IndexMap:
    """Total integer function between index spaces (the ``ip`` of a view)."""

    name: str = "ip"

    def __call__(self, idx: Index) -> Index:
        raise NotImplementedError

    def compose(self, inner: "IndexMap") -> "IndexMap":
        """``self ∘ inner``."""
        return GeneralMap(lambda i: self(inner(i)), f"{self.name}∘{inner.name}")


class SeparableMap(IndexMap):
    """``ip(i_1,..,i_d) = (f_1(i_1),..,f_d(i_d))`` — one scalar function per
    dimension.  This is the form the paper's compile-time optimizations
    analyse; :meth:`dim_func` hands each dimension's function to Table I.
    """

    def __init__(self, funcs: Sequence[IFunc]):
        self.funcs: Tuple[IFunc, ...] = tuple(funcs)
        self.name = "(" + ",".join(f.name for f in self.funcs) + ")"

    @property
    def dim(self) -> int:
        return len(self.funcs)

    def dim_func(self, d: int) -> IFunc:
        return self.funcs[d]

    def __call__(self, idx: Index) -> Index:
        if len(idx) != len(self.funcs):
            raise ValueError(
                f"index arity {len(idx)} != map arity {len(self.funcs)}"
            )
        return tuple(f(i) for f, i in zip(self.funcs, idx))

    def compose(self, inner: "IndexMap") -> "IndexMap":
        if isinstance(inner, SeparableMap):
            if inner.dim != self.dim:
                raise ValueError("arity mismatch in separable composition")
            return SeparableMap(
                tuple(fo.compose(fi) for fo, fi in zip(self.funcs, inner.funcs))
            )
        return super().compose(inner)


class ProjectedMap(IndexMap):
    """``ip(i_0,..,i_{d-1}) = (f_1(i_{dims[1]}), .., f_k(i_{dims[k]}))`` —
    each output dimension draws from one chosen input dimension.

    Generalizes :class:`SeparableMap` to references of lower rank than the
    loop nest (``y[i]`` inside an ``(i, j)`` loop) and to transposed
    accesses (``B[j, i]``).
    """

    def __init__(self, dims: Sequence[int], funcs: Sequence[IFunc]):
        if len(dims) != len(funcs):
            raise ValueError("dims/funcs length mismatch")
        self.dims: Tuple[int, ...] = tuple(dims)
        self.funcs: Tuple[IFunc, ...] = tuple(funcs)
        inner = ",".join(
            f"{f.name}@i{d}" for d, f in zip(self.dims, self.funcs)
        )
        self.name = f"({inner})"

    def __call__(self, idx: Index) -> Index:
        return tuple(f(idx[d]) for d, f in zip(self.dims, self.funcs))

    def dim_func(self, k: int) -> IFunc:
        return self.funcs[k]


class GeneralMap(IndexMap):
    """Arbitrary callable index map (no closed-form optimization)."""

    def __init__(self, fn: Callable[[Index], Index], name: str = "ip"):
        self.fn = fn
        self.name = name

    def __call__(self, idx: Index) -> Index:
        return tuple(self.fn(idx))


def identity_map(dim: int) -> SeparableMap:
    """The ``id`` map of Definition 5, for *dim* dimensions."""
    return SeparableMap(tuple(IdentityF() for _ in range(dim)))


def _identity_dp(b: Bounds) -> Bounds:
    return b


class View:
    """A view ``V = (K, dp, ip)`` (Definition 4)."""

    __slots__ = ("K", "dp", "ip", "dp_name")

    def __init__(
        self,
        K: IndexSet,
        ip: IndexMap,
        dp: Callable[[Bounds], Bounds] = _identity_dp,
        dp_name: str = "id",
    ):
        self.K = K
        self.ip = ip
        self.dp = dp
        self.dp_name = dp_name

    # -- application (Definition 4) ------------------------------------------

    def apply(self, I: IndexSet) -> IndexSet:
        """``V(I) = (b_K & dp(b_I), (P_I ∘ ip) ∧ P_K)``."""
        b = self.K.bounds & self.dp(I.bounds)
        pred = I.predicate.compose(self.ip, self.ip.name) & self.K.predicate
        return IndexSet(b, pred)

    def __call__(self, I: IndexSet) -> IndexSet:
        return self.apply(I)

    def select(self, j: Index) -> Index:
        """Single index selection ``[ip(j)]`` (Definition 3)."""
        return self.ip(j)

    # -- composition (Definition 5) --------------------------------------------

    def compose(self, other: "View") -> "View":
        """``U = self ∘ other``: ``ip_u = ip_w ∘ ip_v`` with ``v = self``,
        ``w = other`` (matching paper Example 5's orientation)."""
        v, w = self, other
        ip_u = w.ip.compose(v.ip)
        dp_u = lambda b, v=v, w=w: v.dp(w.dp(b))  # noqa: E731
        b_u = v.K.bounds & v.dp(w.K.bounds)
        P_u = w.K.predicate.compose(v.ip, v.ip.name) & v.K.predicate
        return View(
            IndexSet(b_u, P_u),
            ip_u,
            dp_u,
            dp_name=f"{v.dp_name}∘{w.dp_name}",
        )

    def __matmul__(self, other: "View") -> "View":
        return self.compose(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"View(K={self.K!r}, dp={self.dp_name}, ip={self.ip.name})"
