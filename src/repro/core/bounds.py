"""Bounded sets (paper Definition 1).

A *bounded set* ``N_b`` with bound vector ``b = (l, u)`` is the Cartesian
product ``N_1 x .. x N_d`` where ``N_i = { n | l_i <= n <= u_i }``.  Bound
vectors support the ``&`` (intersection-of-bounds) operator used in view
composition (Definition 5) and monotone transformation by ``dp`` functions.

All index arithmetic in this package is exact integer arithmetic; nothing
here touches floating point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = ["Bounds", "EMPTY_1D"]


def _as_tuple(v: int | Sequence[int]) -> Tuple[int, ...]:
    if isinstance(v, int):
        return (v,)
    return tuple(int(x) for x in v)


@dataclass(frozen=True)
class Bounds:
    """A bound vector ``b = (l, u)`` describing the bounded set ``N_b``.

    ``lower`` and ``upper`` are d-tuples; the set is empty when
    ``lower[i] > upper[i]`` in any dimension.  One-dimensional bounds may be
    constructed from plain ints: ``Bounds(0, 9)``.
    """

    lower: Tuple[int, ...]
    upper: Tuple[int, ...]

    def __init__(self, lower: int | Sequence[int], upper: int | Sequence[int]):
        lo, up = _as_tuple(lower), _as_tuple(upper)
        if len(lo) != len(up):
            raise ValueError(
                f"lower/upper dimension mismatch: {len(lo)} vs {len(up)}"
            )
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", up)

    # -- basic queries ----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the bounded set."""
        return len(self.lower)

    @property
    def is_empty(self) -> bool:
        """True when any dimension has an empty range."""
        return any(l > u for l, u in zip(self.lower, self.upper))

    def size(self) -> int:
        """Number of points in the bounded set (0 if empty)."""
        if self.is_empty:
            return 0
        n = 1
        for l, u in zip(self.lower, self.upper):
            n *= u - l + 1
        return n

    def __contains__(self, idx: int | Sequence[int]) -> bool:
        t = _as_tuple(idx)
        if len(t) != self.dim:
            return False
        return all(l <= x <= u for x, l, u in zip(t, self.lower, self.upper))

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Lexicographic iteration over all points (the ``•`` order)."""
        if self.is_empty:
            return iter(())
        ranges = [range(l, u + 1) for l, u in zip(self.lower, self.upper)]
        return iter(itertools.product(*ranges))

    def iter_scalar(self) -> Iterator[int]:
        """Iterate a 1-D bounded set as plain ints."""
        if self.dim != 1:
            raise ValueError("iter_scalar requires a 1-D bounded set")
        return iter(range(self.lower[0], self.upper[0] + 1))

    # -- algebra -----------------------------------------------------------

    def __and__(self, other: "Bounds") -> "Bounds":
        """The ``&`` operator of Definition 4: bound vector of the
        intersection of the two bounded sets."""
        if self.dim != other.dim:
            raise ValueError("cannot intersect bounds of different dimension")
        lo = tuple(max(a, b) for a, b in zip(self.lower, other.lower))
        up = tuple(min(a, b) for a, b in zip(self.upper, other.upper))
        return Bounds(lo, up)

    def normalized(self, points: Iterable[Sequence[int]]) -> "Bounds":
        """The tightest (normalized, Example 1) bounds containing *points*.

        Falls back to ``self`` when *points* is empty.
        """
        pts = [_as_tuple(p) for p in points]
        if not pts:
            return self
        lo = tuple(min(p[i] for p in pts) for i in range(self.dim))
        up = tuple(max(p[i] for p in pts) for i in range(self.dim))
        return Bounds(lo, up)

    def scalar(self) -> Tuple[int, int]:
        """Return ``(lower, upper)`` of a 1-D bound as plain ints."""
        if self.dim != 1:
            raise ValueError("scalar() requires a 1-D bounded set")
        return self.lower[0], self.upper[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.dim == 1:
            return f"Bounds({self.lower[0]}:{self.upper[0]})"
        ranges = "x".join(f"{l}:{u}" for l, u in zip(self.lower, self.upper))
        return f"Bounds({ranges})"


#: Canonical empty 1-D bounds (the paper's ``t_min = 0, t_max = -1``).
EMPTY_1D = Bounds(0, -1)
