"""The Section 2.6-2.7 rewriting pipeline, made executable.

The paper derives SPMD programs from the canonical clause by a chain of
calculus rewrites:

1. **canonical form** (Eq. 1)
       ``∆(i ∈ (imin:imax)) ◊ [f(i)]A := Expr([g(i)](B))``
2. **decomposition substitution** — replace ``A`` by ``V(A')`` with
   ``ip(j) = (proc_A(j), local_A(j))`` and likewise ``B`` (pre-Eq. 2);
3. **contraction** (Definition 5's derived result) — collapse the nested
   parameter expressions into direct ``[proc(f(i)), local(f(i))]``
   selections (Eq. 2);
4. **renaming** — ``[E(i), ...] ⇒ ∆(e | E(i) = e)[e, ...]`` introduces
   the processor parameter ``p`` with predicate ``proc_A(f(i)) = p``;
5. **interchange** — move ``∆(p ∈ 0:pmax-1)`` leftmost, migrating the
   predicate inward (Eq. 3): one node program per ``p``;
6. **data retrieval split** (§2.7) — reads become local accesses when
   ``proc_B(g(i)) = p`` and ``fetch`` operations otherwise.

Each :class:`DerivationStep` carries the pretty-printed V-cal form *and*
an executable interpretation; :meth:`SPMDDerivation.check` verifies that
every step computes the same function — the reproduction's proof that the
rewrite chain is semantics-preserving, not just notation.

Only ``//`` clauses are derived (the paper's Eq. (3) interchange step is
what licenses per-processor instantiation; a ``•`` clause would need the
DOACROSS machinery instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..decomp.base import Decomposition
from .clause import Clause, Ordering
from .evaluator import copy_env, evaluate_clause

__all__ = ["DerivationStep", "SPMDDerivation", "derive_spmd",
           "derivation_forms"]

Env = Dict[str, np.ndarray]


@dataclass
class DerivationStep:
    """One rewrite: its rule name, the V-cal form after applying it, and
    an executable interpretation (env -> final value of the written
    array)."""

    rule: str
    form: str
    run: Callable[[Env], np.ndarray]


@dataclass
class SPMDDerivation:
    """The full §2.6-2.7 chain for one clause + decompositions."""

    clause: Clause
    decomps: Dict[str, Decomposition]
    steps: List[DerivationStep] = field(default_factory=list)

    def forms(self) -> List[str]:
        return [f"[{s.rule}]\n    {s.form}" for s in self.steps]

    def pretty(self) -> str:
        return "\n".join(self.forms())

    def as_trace(self):
        """The derivation as a :class:`~repro.pipeline.trace.PipelineTrace`.

        The same record format the PassManager produces, so the CLI and
        reports can render derivations and compilations uniformly."""
        from ..pipeline.trace import PassRecord, PipelineTrace

        trace = PipelineTrace(label=f"derivation {self.clause.name!r}")
        for step in self.steps:
            trace.add(PassRecord(
                name=step.rule,
                paper="§2.6-2.7",
                rewrites=1,
                notes=[step.form],
            ))
        return trace

    def check(self, env: Env) -> np.ndarray:
        """Execute every step on *env*; assert all agree; return the
        common result."""
        results = [step.run(copy_env(env)) for step in self.steps]
        ref = results[0]
        for step, got in zip(self.steps[1:], results[1:]):
            if not np.allclose(got, ref):
                raise AssertionError(
                    f"derivation step {step.rule!r} changed semantics"
                )
        return ref


def derivation_forms(clause: Clause, decomps: Dict[str, Decomposition]):
    """``(rule, V-cal form)`` pairs of the §2.6-2.7 chain — the cheap,
    display-only projection of :func:`derive_spmd` that the pipeline's
    `substitute-views` pass records in its trace notes."""
    return [(s.rule, s.form) for s in derive_spmd(clause, decomps).steps]


def _guard_ok(clause: Clause, idx, env) -> bool:
    return clause.guard is None or bool(clause.guard.eval(idx, env))


def derive_spmd(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> SPMDDerivation:
    """Build the executable derivation chain for a 1-D ``//`` clause."""
    if clause.ordering is not Ordering.PAR:
        raise ValueError("the Eq. (3) derivation applies to // clauses")
    if clause.domain.dim != 1:
        raise ValueError("the paper's derivation is presented for the "
                         "canonical 1-D clause")
    imin, imax = clause.domain.bounds.scalar()
    dA = decomps[clause.lhs.name]
    f = clause.lhs.scalar_func()
    reads = [(r, decomps[r.name], r.scalar_func()) for r in clause.reads()]
    pmax = dA.pmax
    A = clause.lhs.name

    read_forms = ", ".join(f"[{g.name}]({r.name})" for r, _d, g in reads)
    d = SPMDDerivation(clause, decomps)

    # -- step 1: canonical clause (Eq. 1) --------------------------------
    def run_canonical(env: Env) -> np.ndarray:
        return evaluate_clause(clause, env)[A]

    d.steps.append(DerivationStep(
        "canonical (Eq. 1)",
        f"∆(i ∈ ({imin}:{imax})) // [{f.name}]{A} := Expr({read_forms})",
        run_canonical,
    ))

    # -- helper: machine images -------------------------------------------
    def make_images(env: Env) -> Dict[str, List[np.ndarray]]:
        images: Dict[str, List[np.ndarray]] = {}
        for name, dec in decomps.items():
            if name not in env:
                continue
            arrs = [np.zeros(max(dec.local_size(p), 1)) for p in range(pmax)]
            for i in range(dec.n):
                p, l = dec.place(i)
                arrs[p][l] = env[name][i]
            images[name] = arrs
        return images

    def gather_image(images, name: str, dec: Decomposition) -> np.ndarray:
        out = np.zeros(dec.n)
        for i in range(dec.n):
            p, l = dec.place(i)
            out[i] = images[name][p][l]
        return out

    def eval_rhs_on_images(images, idx):
        # element-wise evaluation with every read served from its image
        values = {}
        for r, dec, g in reads:
            p, l = dec.place(g(idx[0]))
            values[id(r)] = images[r.name][p][l]
        from ..codegen.dist_tmpl import _eval_fetched

        return _eval_fetched(clause.rhs, idx, values)

    def guard_on_images(images, idx) -> bool:
        if clause.guard is None:
            return True
        values = {}
        for r, dec, g in reads:
            p, l = dec.place(g(idx[0]))
            values[id(r)] = images[r.name][p][l]
        from ..codegen.dist_tmpl import _eval_fetched

        return bool(_eval_fetched(clause.guard, idx, values))

    # -- step 2+3: substitution and contraction (Eq. 2) --------------------
    def run_contracted(env: Env) -> np.ndarray:
        images = make_images(env)
        pending = []
        for i in range(imin, imax + 1):
            idx = (i,)
            if not guard_on_images(images, idx):
                continue
            pending.append((dA.place(f(i)), eval_rhs_on_images(images, idx)))
        for (p, l), v in pending:
            images[A][p][l] = v
        return gather_image(images, A, dA)

    sub_reads = ", ".join(
        f"[proc_{r.name}({g.name}), local_{r.name}({g.name})]{r.name}'"
        for r, _dec, g in reads
    )
    d.steps.append(DerivationStep(
        "substitute + contract (Eq. 2)",
        f"∆(i ∈ ({imin}:{imax})) // [proc_{A}({f.name}), "
        f"local_{A}({f.name})]{A}' := Expr({sub_reads})",
        run_contracted,
    ))

    # -- step 4+5: renaming and interchange (Eq. 3) -------------------------
    def run_spmd_form(env: Env) -> np.ndarray:
        images = make_images(env)
        pending = []
        for p in range(pmax):  # ∆(p ∈ (0:pmax-1)) — the node programs
            for i in range(imin, imax + 1):
                if dA.proc(f(i)) != p:  # the migrated predicate
                    continue
                idx = (i,)
                if not guard_on_images(images, idx):
                    continue
                pending.append(
                    ((p, dA.local(f(i))), eval_rhs_on_images(images, idx))
                )
        for (p, l), v in pending:
            images[A][p][l] = v
        return gather_image(images, A, dA)

    d.steps.append(DerivationStep(
        "rename + interchange (Eq. 3)",
        f"∆(p ∈ (0:{pmax - 1})) // ∆(i ∈ ({imin}:{imax} | "
        f"proc_{A}({f.name}) = p)) // [p, local_{A}({f.name})]{A}' := "
        f"Expr({sub_reads})",
        run_spmd_form,
    ))

    # -- step 6: data retrieval split (§2.7) ---------------------------------
    def run_retrieval(env: Env) -> np.ndarray:
        images = make_images(env)
        fetches = 0
        pending = []
        from ..codegen.dist_tmpl import _eval_fetched

        for p in range(pmax):
            for i in range(imin, imax + 1):
                if dA.proc(f(i)) != p:
                    continue
                idx = (i,)
                values = {}
                for r, dec, g in reads:
                    q, l = dec.place(g(i))
                    if q != p:
                        fetches += 1  # fetch(proc_B(g(i)), local_B(g(i)))
                    values[id(r)] = images[r.name][q][l]
                if clause.guard is not None and not _eval_fetched(
                    clause.guard, idx, values
                ):
                    continue
                pending.append(
                    ((p, dA.local(f(i))), _eval_fetched(clause.rhs, idx, values))
                )
        for (p, l), v in pending:
            images[A][p][l] = v
        return gather_image(images, A, dA)

    fetch_reads = ", ".join(
        f"(if proc_{r.name}({g.name}) = p then [local_{r.name}({g.name})]"
        f"{r.name}_L else fetch(proc_{r.name}({g.name}), "
        f"local_{r.name}({g.name})))"
        for r, _dec, g in reads
    )
    d.steps.append(DerivationStep(
        "retrieval split (§2.7)",
        f"∆(p ∈ (0:{pmax - 1})) // ∆(i ∈ ({imin}:{imax} | "
        f"proc_{A}({f.name}) = p)) // [local_{A}({f.name})]{A}_L := "
        f"Expr({fetch_reads})",
        run_retrieval,
    ))

    return d
