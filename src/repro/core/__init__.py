"""V-cal: the view calculus of Paalvast, Sips & van Gemund (Section 2)."""

from .bounds import Bounds, EMPTY_1D
from .clause import Clause, Ordering, PAR, Program, SEQ
from .evaluator import (
    WriteConflictError,
    copy_env,
    evaluate_clause,
    evaluate_program,
)
from .expr import BinOp, Const, Expr, LoopIndex, Ref, UnOp
from .ifunc import (
    AffineF,
    ComposedF,
    ConstantF,
    IdentityF,
    IFunc,
    ModularF,
    MonotoneF,
    ceil_div,
    classify,
    floor_div,
)
from .indexset import IndexSet, Predicate, TRUE
from .view import (
    GeneralMap,
    IndexMap,
    ProjectedMap,
    SeparableMap,
    View,
    identity_map,
)

__all__ = [
    "Bounds",
    "EMPTY_1D",
    "IndexSet",
    "Predicate",
    "TRUE",
    "IFunc",
    "ConstantF",
    "AffineF",
    "IdentityF",
    "MonotoneF",
    "ModularF",
    "ComposedF",
    "classify",
    "ceil_div",
    "floor_div",
    "View",
    "IndexMap",
    "SeparableMap",
    "ProjectedMap",
    "GeneralMap",
    "identity_map",
    "Expr",
    "Const",
    "LoopIndex",
    "Ref",
    "BinOp",
    "UnOp",
    "Clause",
    "Program",
    "Ordering",
    "SEQ",
    "PAR",
    "evaluate_clause",
    "evaluate_program",
    "copy_env",
    "WriteConflictError",
]
