"""Clauses and parameter expressions (paper Sections 2.4-2.5).

A *parameter expression* ``∆(i ∈ J) ◊ body`` is the paper's abstract loop,
generalizing all DO-loop forms; the ordering operator ``◊`` is either

* ``SEQ`` (the paper's ``•``) — lexicographic order, or
* ``PAR`` (the paper's ``//``) — no ordering, parallel execution legal.

A *clause* incorporates a view expression and an assignment and defines a
state-to-state transformation:

    ``∆(i ∈ J) ◊ ([f(i)](A) := Expr([g(i)](B), ...))``

which is exactly the canonical form Eq. (1) that SPMD generation starts
from.  The optional *guard* expression restricts the index set with a
data-dependent predicate, as in Fig. 1's ``A[i] > 0``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .expr import Expr, Ref
from .indexset import IndexSet

__all__ = ["Ordering", "SEQ", "PAR", "Clause", "Program"]

Index = Tuple[int, ...]


class Ordering(enum.Enum):
    """The ``◊`` ordering operator."""

    SEQ = "•"
    PAR = "//"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


SEQ = Ordering.SEQ
PAR = Ordering.PAR


@dataclass
class Clause:
    """``∆(i ∈ domain) ◊ (lhs := rhs)`` with an optional data guard."""

    domain: IndexSet
    lhs: Ref
    rhs: Expr
    ordering: Ordering = PAR
    guard: Optional[Expr] = None
    name: str = "clause"

    def __post_init__(self) -> None:
        if self.domain.dim < 1:
            raise ValueError("clause domain must have dimension >= 1")

    # -- queries ---------------------------------------------------------------

    def reads(self) -> List[Ref]:
        """All data references read by the clause (rhs and guard)."""
        out = list(self.rhs.refs())
        if self.guard is not None:
            out.extend(self.guard.refs())
        return out

    def read_names(self) -> List[str]:
        seen: List[str] = []
        for r in self.reads():
            if r.name not in seen:
                seen.append(r.name)
        return seen

    def array_names(self) -> List[str]:
        names = [self.lhs.name]
        for n in self.read_names():
            if n not in names:
                names.append(n)
        return names

    def is_parallel(self) -> bool:
        return self.ordering is PAR

    def iter_indices(self, env=None) -> Iterator[Index]:
        """Indices of the domain, optionally filtered by the data guard.

        When *env* is None the guard is ignored (pure index-set view); with
        an environment the guard is evaluated per index, matching the
        predicate-on-data-values semantics of Section 2.4.
        """
        for idx in self.domain:
            if env is not None and self.guard is not None:
                if not self.guard.eval(idx, env):
                    continue
            yield idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        g = f" | {self.guard!r}" if self.guard is not None else ""
        return (
            f"∆(i ∈ {self.domain.bounds!r}{g}) {self.ordering} "
            f"({self.lhs!r} := {self.rhs!r})"
        )


@dataclass
class Program:
    """A sequential composition of clauses (the stateful part of an
    algorithm, Section 2.1: clauses execute in order, each clause's interior
    may be parallel)."""

    clauses: List[Clause] = field(default_factory=list)
    name: str = "program"

    def add(self, clause: Clause) -> "Program":
        self.clauses.append(clause)
        return self

    def array_names(self) -> List[str]:
        names: List[str] = []
        for c in self.clauses:
            for n in c.array_names():
                if n not in names:
                    names.append(n)
        return names

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)
