"""Index sets (paper Definition 2): a bounded set plus a predicate.

``I = { i in N_b | P(i) }`` written ``I = (b, P)``.  Predicates compose with
index-propagation functions during view composition (Definition 5):
``P_u = (P_Kw ∘ ip_v) ∧ P_Kv``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, Tuple

from .bounds import Bounds

__all__ = ["Predicate", "TRUE", "IndexSet"]

Index = Tuple[int, ...]


class Predicate:
    """A named predicate ``P: N^c -> bool`` over indices.

    Wrapping the callable keeps composition inspectable (the paper reasons
    symbolically about ``P ∘ ip``); ``name`` is purely diagnostic.
    """

    __slots__ = ("fn", "name")

    def __init__(self, fn: Callable[[Index], bool], name: str = "P"):
        self.fn = fn
        self.name = name

    def __call__(self, idx: Index) -> bool:
        return bool(self.fn(idx))

    def compose(self, ip: Callable[[Index], Index], ip_name: str = "ip") -> "Predicate":
        """``P ∘ ip`` — the predicate pulled back through *ip*."""
        return Predicate(lambda i: self.fn(ip(i)), f"{self.name}∘{ip_name}")

    def __and__(self, other: "Predicate") -> "Predicate":
        if self is TRUE:
            return other
        if other is TRUE:
            return self
        return Predicate(
            lambda i: self.fn(i) and other.fn(i), f"({self.name})∧({other.name})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Predicate({self.name})"


#: The always-true predicate; identity of ``∧``.
TRUE = Predicate(lambda i: True, "true")


def _as_index(i: int | Sequence[int]) -> Index:
    if isinstance(i, int):
        return (i,)
    return tuple(int(x) for x in i)


class IndexSet:
    """``I = (b, P)``: the indices of ``N_b`` satisfying ``P``.

    Iteration is lexicographic, matching the ``•`` ordering; unordered
    (``//``) consumers are free to ignore the order.
    """

    __slots__ = ("bounds", "predicate")

    def __init__(self, bounds: Bounds, predicate: Predicate = TRUE):
        self.bounds = bounds
        self.predicate = predicate

    # -- constructors -------------------------------------------------------

    @classmethod
    def range1d(cls, lo: int, hi: int, predicate: Predicate = TRUE) -> "IndexSet":
        """The 1-D index set ``(lo:hi, P)``."""
        return cls(Bounds(lo, hi), predicate)

    @classmethod
    def of_shape(cls, *extents: int) -> "IndexSet":
        """Zero-based dense index set for an array of the given extents."""
        lo = tuple(0 for _ in extents)
        up = tuple(e - 1 for e in extents)
        return cls(Bounds(lo, up))

    # -- queries -------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.bounds.dim

    def __contains__(self, i: int | Sequence[int]) -> bool:
        idx = _as_index(i)
        return idx in self.bounds and self.predicate(idx)

    def __iter__(self) -> Iterator[Index]:
        for idx in self.bounds:
            if self.predicate(idx):
                yield idx

    def iter_scalar(self) -> Iterator[int]:
        """Iterate a 1-D index set as plain ints."""
        if self.dim != 1:
            raise ValueError("iter_scalar requires a 1-D index set")
        for (i,) in self:
            yield i

    def materialize(self) -> list[Index]:
        """Enumerate every member (lexicographic)."""
        return list(self)

    def size(self) -> int:
        """Number of members.  O(volume of the bounding box)."""
        return sum(1 for _ in self)

    def is_empty(self) -> bool:
        return next(iter(self), None) is None

    # -- algebra --------------------------------------------------------------

    def restrict(self, predicate: Predicate) -> "IndexSet":
        """Conjoin an extra predicate (used by guard conditions)."""
        return IndexSet(self.bounds, self.predicate & predicate)

    def intersect(self, other: "IndexSet") -> "IndexSet":
        """Set intersection, as bounds-& plus predicate conjunction."""
        return IndexSet(self.bounds & other.bounds, self.predicate & other.predicate)

    def same_members(self, other: Iterable[Sequence[int]]) -> bool:
        """Exact membership comparison against any iterable of indices."""
        return self.materialize() == [
            _as_index(i) for i in other
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexSet({self.bounds!r}, {self.predicate.name})"
