"""V-cal expressions (paper Section 2.4).

Multi-dimensional operations in V-cal are strictly element-wise:

    ``∆(i∈J)[ip(i)](V ⊕ W) = ∆(i∈J)([ip(i)](V) + [ip(i)](W))``

so an expression is evaluated *per selected index*.  An expression tree is
built from data references ``Ref(name, imap)`` (the ``[g(i)](B)`` selections),
scalar constants, the loop indices themselves, and element-wise operators.

Expressions also serve as guards (predicates on data values, e.g.
``A[i] > 0`` in Fig. 1), in which case they evaluate to booleans.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterator, Mapping, Sequence, Tuple

from .view import IndexMap, SeparableMap

__all__ = [
    "Expr",
    "Const",
    "LoopIndex",
    "Ref",
    "BinOp",
    "UnOp",
    "OPS",
    "UNARY_OPS",
]

Index = Tuple[int, ...]
Env = Mapping[str, "object"]  # name -> numpy array (or nested sequence)


OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "div": operator.floordiv,
    "mod": operator.mod,
    "min": min,
    "max": max,
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "!=": operator.ne,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}

UNARY_OPS: Dict[str, Callable] = {
    "-": operator.neg,
    "not": operator.not_,
    "abs": abs,
}


class Expr:
    """Base class of element-wise V-cal expressions."""

    def eval(self, idx: Index, env: Env):
        """Value of the expression at loop index *idx* under *env*."""
        raise NotImplementedError

    def refs(self) -> Iterator["Ref"]:
        """All data references in the tree (pre-order)."""
        raise NotImplementedError

    # operator sugar -------------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, _lift(other))

    def __sub__(self, other):
        return BinOp("-", self, _lift(other))

    def __mul__(self, other):
        return BinOp("*", self, _lift(other))

    def __gt__(self, other):
        return BinOp(">", self, _lift(other))

    def __lt__(self, other):
        return BinOp("<", self, _lift(other))


def _lift(v) -> "Expr":
    if isinstance(v, Expr):
        return v
    if isinstance(v, (int, float, bool)):
        return Const(v)
    raise TypeError(f"cannot lift {type(v).__name__} to Expr")


class Const(Expr):
    """A scalar constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def eval(self, idx: Index, env: Env):
        return self.value

    def refs(self) -> Iterator["Ref"]:
        return iter(())

    def __repr__(self) -> str:
        return repr(self.value)


class LoopIndex(Expr):
    """The loop index itself (dimension *dim* of the selected index)."""

    __slots__ = ("dim",)

    def __init__(self, dim: int = 0):
        self.dim = dim

    def eval(self, idx: Index, env: Env):
        return idx[self.dim]

    def refs(self) -> Iterator["Ref"]:
        return iter(())

    def __repr__(self) -> str:
        return f"i{self.dim}" if self.dim else "i"


class Ref(Expr):
    """A data reference ``[imap(i)](name)`` — e.g. ``B[g(i)]``.

    ``imap`` maps the loop index tuple to the array index tuple.  For the
    canonical 1-D clause of the paper this is a :class:`SeparableMap` with a
    single scalar access function ``g``.
    """

    __slots__ = ("name", "imap")

    def __init__(self, name: str, imap: IndexMap):
        self.name = name
        self.imap = imap

    def array_index(self, idx: Index) -> Index:
        return self.imap(idx)

    def eval(self, idx: Index, env: Env):
        arr = env[self.name]
        ai = self.imap(idx)
        return arr[ai if len(ai) > 1 else ai[0]]

    def refs(self) -> Iterator["Ref"]:
        yield self

    def scalar_func(self):
        """The scalar access function, for 1-D separable references."""
        from .view import ProjectedMap

        if isinstance(self.imap, SeparableMap) and self.imap.dim == 1:
            return self.imap.dim_func(0)
        if (
            isinstance(self.imap, ProjectedMap)
            and len(self.imap.funcs) == 1
            and self.imap.dims == (0,)
        ):
            return self.imap.dim_func(0)
        raise ValueError(f"reference {self!r} is not 1-D separable")

    def __repr__(self) -> str:
        return f"{self.name}[{self.imap.name}]"


class BinOp(Expr):
    """Element-wise binary operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in OPS:
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, idx: Index, env: Env):
        return OPS[self.op](self.left.eval(idx, env), self.right.eval(idx, env))

    def refs(self) -> Iterator["Ref"]:
        yield from self.left.refs()
        yield from self.right.refs()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    """Element-wise unary operation."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def eval(self, idx: Index, env: Env):
        return UNARY_OPS[self.op](self.operand.eval(idx, env))

    def refs(self) -> Iterator["Ref"]:
        yield from self.operand.refs()

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"
