"""Sequential reference evaluator for V-cal clauses and programs.

This is the semantic oracle of the reproduction: every generated SPMD
program (shared- or distributed-memory, any decomposition, optimized or
naive) must produce exactly the state this evaluator produces.

Evaluation is two-phase for parallel (``//``) clauses — all right-hand
sides are evaluated against the *pre*-state before any assignment lands —
matching the paper's requirement that ``//`` clauses be independent
(Section 2.1's state-less mappings).  Sequential (``•``) clauses evaluate
in lexicographic order with immediate assignment, which is what DOACROSS
degenerates to on one processor.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .clause import Clause, Ordering, Program

__all__ = ["evaluate_clause", "evaluate_program", "copy_env", "WriteConflictError"]

Env = Dict[str, np.ndarray]


class WriteConflictError(RuntimeError):
    """Two iterations of a ``//`` clause wrote the same element."""


def copy_env(env: Env) -> Env:
    """Deep-copy an environment of numpy arrays."""
    return {k: np.array(v, copy=True) for k, v in env.items()}


def _store(arr: np.ndarray, idx: Tuple[int, ...], value) -> None:
    arr[idx if len(idx) > 1 else idx[0]] = value


def evaluate_clause(clause: Clause, env: Env, check_conflicts: bool = False) -> Env:
    """Evaluate one clause in place; returns *env* for chaining.

    With ``check_conflicts=True`` a ``//`` clause that writes the same
    array element from two different loop indices raises
    :class:`WriteConflictError` — the independence premise of parallel
    ordering, useful in tests.
    """
    target = env[clause.lhs.name]
    if clause.ordering is Ordering.PAR:
        # Evaluate all rhs against the pre-state, then commit.
        pending: List[Tuple[Tuple[int, ...], object]] = []
        seen = set() if check_conflicts else None
        for idx in clause.iter_indices(env):
            ai = clause.lhs.array_index(idx)
            if seen is not None:
                if ai in seen:
                    raise WriteConflictError(
                        f"clause {clause.name!r}: duplicate write to "
                        f"{clause.lhs.name}[{ai}]"
                    )
                seen.add(ai)
            pending.append((ai, clause.rhs.eval(idx, env)))
        for ai, value in pending:
            _store(target, ai, value)
    else:
        for idx in clause.iter_indices(env):
            ai = clause.lhs.array_index(idx)
            _store(target, ai, clause.rhs.eval(idx, env))
    return env


def evaluate_program(
    program: Program, env: Env, check_conflicts: bool = False
) -> Env:
    """Evaluate a program (clauses in order) in place."""
    for clause in program:
        evaluate_clause(clause, env, check_conflicts=check_conflicts)
    return env
