"""Index-propagation function algebra (paper Definitions 3-5, Section 3).

The optimizations of Section 3 are driven by *classes* of scalar index
functions ``f : Z -> Z``:

* ``ConstantF``   — ``f(i) = c``                        (Theorem 1)
* ``AffineF``     — ``f(i) = a.i + c``, ``a != 0``      (Theorem 3, corollaries)
* ``MonotoneF``   — arbitrary monotone injective ``f``  (Theorem 2, §3.2.iii)
* ``ModularF``    — ``f(i) = g(i) mod z + d``           (§3.3 piecewise)
* ``ComposedF``   — ``f ∘ g``                           (Definition 5)

Every function exposes exact integer *preimage* computation: the set of
integers ``i`` in ``[imin, imax]`` with ``lo <= f(i) <= hi``, returned as a
list of disjoint increasing ``(jmin, jmax)`` ranges.  This is the primitive
from which all Table I enumerators derive their loop bounds, with the
ceil/floor integer-boundary care the paper leaves implicit.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

__all__ = [
    "ceil_div",
    "floor_div",
    "IFunc",
    "ConstantF",
    "AffineF",
    "MonotoneF",
    "ModularF",
    "IndirectF",
    "ComposedF",
    "IdentityF",
    "classify",
]


def floor_div(a: int, b: int) -> int:
    """Exact ``floor(a / b)`` for integers, any sign of *b* (b != 0).

    Python's ``//`` already floors toward negative infinity, which is the
    semantics Theorem 2's range derivations require.
    """
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Exact ``ceil(a / b)`` for integers, any sign of *b* (b != 0)."""
    q, r = divmod(a, b)
    return q + (1 if r else 0)


Ranges = List[Tuple[int, int]]


def _clip(jmin: int, jmax: int, imin: int, imax: int) -> Ranges:
    lo, hi = max(jmin, imin), min(jmax, imax)
    return [(lo, hi)] if lo <= hi else []


def _merge(ranges: Ranges) -> Ranges:
    """Sort and coalesce adjacent/overlapping ranges."""
    out: Ranges = []
    for lo, hi in sorted(r for r in ranges if r[0] <= r[1]):
        if out and lo <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


class IFunc:
    """Base class for scalar index-propagation functions."""

    #: diagnostic name used by repr and codegen comments
    name: str = "f"

    # -- evaluation ---------------------------------------------------------

    def __call__(self, i: int) -> int:
        raise NotImplementedError

    # -- classification (Table I dispatch) -----------------------------------

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_affine(self) -> bool:
        return False

    def monotone_direction(self, imin: int, imax: int) -> int:
        """+1 increasing, -1 decreasing, 0 neither/unknown on [imin, imax]."""
        raise NotImplementedError

    def derivative_bound(self, imin: int, imax: int) -> float:
        """An upper bound on ``df/di`` over the interval (used by the
        enumerate-on-k advantage test of Section 3.2)."""
        raise NotImplementedError

    # -- inverse machinery ----------------------------------------------------

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        """Disjoint increasing integer ranges of ``{ i in [imin,imax] |
        lo <= f(i) <= hi }``."""
        raise NotImplementedError

    def solve(self, v: int, imin: int, imax: int) -> List[int]:
        """All ``i`` in ``[imin, imax]`` with ``f(i) = v``, increasing."""
        out: List[int] = []
        for jmin, jmax in self.preimage(v, v, imin, imax):
            out.extend(range(jmin, jmax + 1))
        return out

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        """``(min f, max f)`` over the (non-empty) interval.

        Exact for monotone pieces; subclasses override as needed.
        """
        raise NotImplementedError

    # -- composition -----------------------------------------------------------

    def compose(self, inner: "IFunc") -> "IFunc":
        """``self ∘ inner`` (Definition 5: ``ip_u = ip_w ∘ ip_v``)."""
        return ComposedF(self, inner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class ConstantF(IFunc):
    """``f(i) = c`` (Theorem 1)."""

    def __init__(self, c: int):
        self.c = int(c)
        self.name = f"{self.c}"

    def __call__(self, i: int) -> int:
        return self.c

    @property
    def is_constant(self) -> bool:
        return True

    def monotone_direction(self, imin: int, imax: int) -> int:
        return 0

    def derivative_bound(self, imin: int, imax: int) -> float:
        return 0.0

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        if lo <= self.c <= hi and imin <= imax:
            return [(imin, imax)]
        return []

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        return self.c, self.c

    def __eq__(self, other):
        return isinstance(other, ConstantF) and other.c == self.c

    def __hash__(self):
        return hash(("ConstantF", self.c))


class AffineF(IFunc):
    """``f(i) = a.i + c`` with ``a != 0`` (Theorem 3 and corollaries)."""

    def __init__(self, a: int, c: int = 0):
        if a == 0:
            raise ValueError("AffineF requires a != 0; use ConstantF")
        self.a = int(a)
        self.c = int(c)
        self.name = f"{self.a}*i{self.c:+d}" if self.c else f"{self.a}*i"

    def __call__(self, i: int) -> int:
        return self.a * i + self.c

    @property
    def is_affine(self) -> bool:
        return True

    def monotone_direction(self, imin: int, imax: int) -> int:
        return 1 if self.a > 0 else -1

    def derivative_bound(self, imin: int, imax: int) -> float:
        return float(abs(self.a))

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        # lo <= a.i + c <= hi
        if self.a > 0:
            jmin = ceil_div(lo - self.c, self.a)
            jmax = floor_div(hi - self.c, self.a)
        else:
            jmin = ceil_div(hi - self.c, self.a)
            jmax = floor_div(lo - self.c, self.a)
        return _clip(jmin, jmax, imin, imax)

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        v1, v2 = self(imin), self(imax)
        return (v1, v2) if v1 <= v2 else (v2, v1)

    def compose(self, inner: "IFunc") -> "IFunc":
        # Affine∘Affine stays affine; Affine∘Constant is constant.
        if isinstance(inner, AffineF):
            return AffineF(self.a * inner.a, self.a * inner.c + self.c)
        if isinstance(inner, ConstantF):
            return ConstantF(self(inner.c))
        return ComposedF(self, inner)

    def __eq__(self, other):
        return isinstance(other, AffineF) and (other.a, other.c) == (self.a, self.c)

    def __hash__(self):
        return hash(("AffineF", self.a, self.c))


class IdentityF(AffineF):
    """``f(i) = i`` — the ``id`` of Definition 5."""

    def __init__(self) -> None:
        super().__init__(1, 0)
        self.name = "i"


class MonotoneF(IFunc):
    """Arbitrary monotone injective ``f`` given as a callable.

    The integer inverse is computed by binary search, exactly as Section 4
    prescribes for non-linear monotone functions whose symbolic inverse is
    unavailable to the compiler.

    ``direction`` is +1 (increasing) or -1 (decreasing); it is validated
    lazily against evaluations.
    """

    def __init__(
        self,
        fn: Callable[[int], int],
        direction: int = 1,
        name: str = "f",
        derivative_max: float | None = None,
    ):
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        self.fn = fn
        self.direction = direction
        self.name = name
        self._dmax = derivative_max

    def __call__(self, i: int) -> int:
        return int(self.fn(i))

    def monotone_direction(self, imin: int, imax: int) -> int:
        return self.direction

    def derivative_bound(self, imin: int, imax: int) -> float:
        if self._dmax is not None:
            return self._dmax
        if imax <= imin:
            return 0.0
        # Monotone => the mean slope over the whole interval bounds nothing
        # pointwise, but sampling successive differences gives a practical
        # bound for the §3.2 enumerate-on-k heuristic.
        span = imax - imin
        samples = min(span, 64)
        step = max(1, span // samples)
        best = 0.0
        i = imin
        while i < imax:
            j = min(i + step, imax)
            best = max(best, abs(self(j) - self(i)) / (j - i))
            i = j
        return best

    # least i in [imin, imax] with f(i) >= v (increasing) — binary search
    def _lower_bound(self, v: int, imin: int, imax: int) -> int:
        lo, hi = imin, imax + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self(mid) >= v:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # greatest i in [imin, imax] with f(i) <= v (increasing)
    def _upper_bound(self, v: int, imin: int, imax: int) -> int:
        lo, hi = imin - 1, imax
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self(mid) <= v:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        if imin > imax or lo > hi:
            return []
        if self.direction == 1:
            jmin = self._lower_bound(lo, imin, imax)
            jmax = self._upper_bound(hi, imin, imax)
        else:
            # decreasing: f(i) <= hi for large i, f(i) >= lo for small i.
            # Negate to reuse the increasing searches.
            neg = MonotoneF(lambda i: -self.fn(i), 1, f"-{self.name}")
            return neg.preimage(-hi, -lo, imin, imax)
        return _clip(jmin, jmax, imin, imax)

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        v1, v2 = self(imin), self(imax)
        return (v1, v2) if v1 <= v2 else (v2, v1)


class ModularF(IFunc):
    """``f(i) = g(i) mod z + d`` with monotone increasing ``g`` (§3.3).

    Covers rotate and shuffle style views, e.g. ``f(i) = (i+6) mod 20``.
    The function is piece-wise monotone; ``pieces`` splits ``[imin, imax]``
    at the breakpoints (where ``g(i) div z`` increments) into segments on
    which ``f(i) = g(i) - z.k + d`` is plain monotone, matching the paper's
    range-splitting treatment.
    """

    def __init__(self, g: IFunc, z: int, d: int = 0):
        if z <= 0:
            raise ValueError("modulus z must be positive")
        self.g = g
        self.z = int(z)
        self.d = int(d)
        self.name = f"({g.name}) mod {z}" + (f" + {d}" if d else "")

    def __call__(self, i: int) -> int:
        return self.g(i) % self.z + self.d

    def monotone_direction(self, imin: int, imax: int) -> int:
        gmin, gmax = self.g(imin), self.g(imax)
        return 1 if gmin // self.z == gmax // self.z else 0

    def derivative_bound(self, imin: int, imax: int) -> float:
        return self.g.derivative_bound(imin, imax)

    def is_injective_on(self, imin: int, imax: int) -> bool:
        """Injectivity criterion of §3.3: ``z > g(imax) - g(imin)``."""
        return self.z > self.g(imax) - self.g(imin)

    def breakpoints(self, imin: int, imax: int) -> List[int]:
        """All ``i_b`` in ``(imin, imax]`` where ``g(i) div z`` increments.

        Each returned ``i_b`` is the first index of a new monotone piece.
        """
        if imin > imax:
            return []
        kmin = floor_div(self.g(imin), self.z)
        kmax = floor_div(self.g(imax), self.z)
        bps: List[int] = []
        lo = imin
        for k in range(kmin + 1, kmax + 1):
            # first i with g(i) >= k*z — binary search on monotone g
            target = k * self.z
            a, b = lo, imax
            while a < b:
                mid = (a + b) // 2
                if self.g(mid) >= target:
                    b = mid
                else:
                    a = mid + 1
            bps.append(a)
            lo = a
        return bps

    def pieces(self, imin: int, imax: int) -> List[Tuple[int, int, IFunc]]:
        """Monotone segments ``(seg_lo, seg_hi, f_k)`` covering
        ``[imin, imax]`` with ``f_k(i) = g(i) - z.k + d`` on each segment."""
        if imin > imax:
            return []
        cuts = [imin] + self.breakpoints(imin, imax) + [imax + 1]
        out: List[Tuple[int, int, IFunc]] = []
        for lo, nxt in zip(cuts, cuts[1:]):
            hi = nxt - 1
            if lo > hi:
                continue
            k = floor_div(self.g(lo), self.z)
            shift = -self.z * k + self.d
            if isinstance(self.g, AffineF):
                piece: IFunc = AffineF(self.g.a, self.g.c + shift)
            elif isinstance(self.g, ConstantF):
                piece = ConstantF(self.g.c + shift)
            else:
                gg = self.g
                piece = MonotoneF(
                    lambda i, gg=gg, shift=shift: gg(i) + shift,
                    1,
                    f"{self.g.name}{shift:+d}",
                )
            out.append((lo, hi, piece))
        return out

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        ranges: Ranges = []
        for seg_lo, seg_hi, piece in self.pieces(imin, imax):
            ranges.extend(piece.preimage(lo, hi, seg_lo, seg_hi))
        return _merge(ranges)

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        los, his = [], []
        for seg_lo, seg_hi, piece in self.pieces(imin, imax):
            a, b = piece.image_bounds(seg_lo, seg_hi)
            los.append(a)
            his.append(b)
        return min(los), max(his)

    def compose(self, inner: "IFunc") -> "IFunc":
        # (g mod z + d) ∘ h = (g∘h) mod z + d, provided g∘h stays
        # monotone increasing (the ModularF contract).
        composed_g = self.g.compose(inner)
        if isinstance(composed_g, AffineF) and composed_g.a > 0:
            return ModularF(composed_g, self.z, self.d)
        if isinstance(composed_g, ConstantF):
            return ConstantF(composed_g.c % self.z + self.d)
        return ComposedF(self, inner)


class IndirectF(IFunc):
    """``f(i) = T[i]`` — indirection through a run-time integer table.

    The §3 case where the access "depends on values of the array
    elements": nothing about ``T`` is known at compile time, so no
    Table I closed form applies; the inspector/executor machinery
    (:mod:`repro.codegen.inspector`) handles it at run time.
    """

    def __init__(self, table, name: str = "T"):
        import numpy as _np

        self.table = _np.asarray(table, dtype=_np.int64)
        self.name = f"{name}[i]"

    def __call__(self, i: int) -> int:
        return int(self.table[i])

    def monotone_direction(self, imin: int, imax: int) -> int:
        vals = self.table[imin:imax + 1]
        if len(vals) < 2:
            return 1
        diffs = vals[1:] - vals[:-1]
        if (diffs > 0).all():
            return 1
        if (diffs < 0).all():
            return -1
        return 0

    def derivative_bound(self, imin: int, imax: int) -> float:
        vals = self.table[imin:imax + 1]
        if len(vals) < 2:
            return 0.0
        return float(abs(vals[1:] - vals[:-1]).max())

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        out: Ranges = []
        for i in range(max(imin, 0), min(imax, len(self.table) - 1) + 1):
            if lo <= self.table[i] <= hi:
                out.append((i, i))
        return _merge(out)

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        vals = self.table[imin:imax + 1]
        return int(vals.min()), int(vals.max())


class ComposedF(IFunc):
    """``outer ∘ inner`` for classes with no closed-form simplification."""

    def __init__(self, outer: IFunc, inner: IFunc):
        self.outer = outer
        self.inner = inner
        self.name = f"{outer.name}∘{inner.name}"

    def __call__(self, i: int) -> int:
        return self.outer(self.inner(i))

    def monotone_direction(self, imin: int, imax: int) -> int:
        di = self.inner.monotone_direction(imin, imax)
        if di == 0:
            return 0
        lo, hi = self.inner.image_bounds(imin, imax)
        do = self.outer.monotone_direction(lo, hi)
        return di * do

    def derivative_bound(self, imin: int, imax: int) -> float:
        lo, hi = self.inner.image_bounds(imin, imax)
        return self.inner.derivative_bound(imin, imax) * self.outer.derivative_bound(
            lo, hi
        )

    def preimage(self, lo: int, hi: int, imin: int, imax: int) -> Ranges:
        glo, ghi = self.inner.image_bounds(imin, imax)
        mids = self.outer.preimage(lo, hi, glo, ghi)
        out: Ranges = []
        for mlo, mhi in mids:
            out.extend(self.inner.preimage(mlo, mhi, imin, imax))
        return _merge(out)

    def image_bounds(self, imin: int, imax: int) -> Tuple[int, int]:
        lo, hi = self.inner.image_bounds(imin, imax)
        return self.outer.image_bounds(lo, hi)


def classify(f: IFunc) -> str:
    """Table I row selector: the access-function class name."""
    if isinstance(f, ConstantF):
        return "constant"
    if isinstance(f, AffineF):
        if f.a == 1:
            return "shift"  # i + c
        return "affine"  # a*i + c
    if isinstance(f, ModularF):
        return "modular"
    if isinstance(f, MonotoneF):
        return "monotone"
    if isinstance(f, IndirectF):
        return "indirect"
    return "general"
