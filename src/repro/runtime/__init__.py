"""Multi-process SPMD runtime (``backend="mp"``).

The simulated machines prove the paper's generation story; this package
executes it: the compile-once fused node kernels of the `lower-kernels`
pass run in **real OS processes**, with global arrays in
``multiprocessing.shared_memory`` and inter-node messages over real
queues following the overlap schedule (post sends, compute interior,
drain, commit boundary).

Layers
------

``lowering``   plan IR -> :class:`MpProgram` (global-address gather/
               scatter keys, per-node send/read plans, lane split)
``shm``        per-run shared-memory sessions + leak-proof unlinking
``worker``     the worker process main loop (install/run protocol)
``pool``       persistent :class:`WorkerPool`, crash/timeout detection,
               self-healing respawn, :func:`shutdown_runtime`
``exec``       ``run_shared_mp`` / ``run_distributed_mp`` drivers and
               the :class:`MpMachine` result surface
``stats``      per-worker :class:`RuntimeStats` observability

See ``docs/runtime.md`` for the process model and failure semantics.
"""

from .exec import (
    MpMachine,
    run_distributed_mp,
    run_program_mp,
    run_shared_mp,
)
from .lowering import (
    MpLoweringError,
    MpProgram,
    lower_dist,
    lower_shared,
)
from .pool import (
    DEFAULT_TIMEOUT,
    WorkerCrashError,
    WorkerPool,
    get_pool,
    install_signal_handlers,
    runtime_info,
    shutdown_runtime,
)
from .shm import ShmSession, active_segments
from .stats import RuntimeStats

__all__ = [
    "DEFAULT_TIMEOUT",
    "MpLoweringError",
    "MpMachine",
    "MpProgram",
    "RuntimeStats",
    "ShmSession",
    "WorkerCrashError",
    "WorkerPool",
    "active_segments",
    "get_pool",
    "install_signal_handlers",
    "lower_dist",
    "lower_shared",
    "run_distributed_mp",
    "run_program_mp",
    "run_shared_mp",
    "runtime_info",
    "shutdown_runtime",
]
