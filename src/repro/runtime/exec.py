"""Parent-side drivers: run compiled plans on the worker pool.

``run_shared_mp`` / ``run_distributed_mp`` are what the ``backend="mp"``
dispatch branches of the code generators call.  Both:

* gate on the static verifier exactly like fused ``--strict``
  (:func:`repro.machine.fused.check_strict`);
* lower the plan once (cached on its kernels) via
  :mod:`repro.runtime.lowering` — a plan with no mp form raises
  :class:`~repro.runtime.lowering.MpLoweringError`, which the
  dispatchers catch to fall back to the in-process fused path;
* back the global arrays with a per-run :class:`~repro.runtime.shm.ShmSession`
  and execute on the persistent pool;
* aggregate the workers' per-node counters into the existing
  :class:`~repro.machine.stats.MachineStats` (counter-for-counter with
  the fused backend) and attach the per-worker
  :class:`~repro.runtime.stats.RuntimeStats` as ``runtime_stats``.

Node programs multiplex round-robin onto workers (``node % nprocs``)
when fewer processes than nodes are requested.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..core.clause import Ordering
from ..machine.shared import SharedMachine
from ..machine.stats import MachineStats
from .lowering import MpLoweringError, lower_dist, lower_shared
from .pool import DEFAULT_TIMEOUT, WorkerCrashError, get_pool
from .shm import ShmSession
from .stats import RuntimeStats

__all__ = ["MpMachine", "run_distributed_mp", "run_program_mp",
           "run_shared_mp"]

#: default worker-count ceiling when ``processes`` is not given
_DEFAULT_MAX_PROCESSES = 8


def _nprocs(processes: Optional[int], pmax: int) -> int:
    if processes is None:
        env = os.environ.get("REPRO_MP_PROCESSES")
        processes = int(env) if env else min(pmax, _DEFAULT_MAX_PROCESSES)
    return max(1, min(int(processes), pmax))


class MpMachine:
    """Result surface of a distributed mp run: global post-state plus
    the usual stats counters (duck-compatible with ``collect``/``stats``
    consumers of the simulated distributed machine)."""

    is_mp = True

    def __init__(self, pmax: int, decomps: Dict[str, object]):
        self.pmax = pmax
        self.decomps = dict(decomps)
        self.stats = MachineStats.for_nodes(pmax)
        self.arrays: Dict[str, np.ndarray] = {}
        self.runtime_stats: List[RuntimeStats] = []

    def collect(self, name: str) -> np.ndarray:
        return np.array(self.arrays[name])

    def global_view(self, name: str) -> np.ndarray:
        return self.arrays[name]


def _fill_stats(stats: MachineStats, replies) -> List[RuntimeStats]:
    workers = []
    for rstats, counts in replies:
        workers.append(rstats)
        for p, c in counts.items():
            node = stats[p]
            for attr, value in c.items():
                setattr(node, attr, getattr(node, attr) + value)
    workers.sort(key=lambda s: s.rank)
    return workers


def _check(ir, strict: bool) -> None:
    from ..analysis import check_kernels_strict
    from ..machine.fused import check_strict

    if ir.clause.ordering is not Ordering.PAR:
        raise MpLoweringError(
            "sequential (•) clause is a serial chain; scalar path kept")
    check_strict(ir, strict)
    check_kernels_strict(ir, strict)


def _certify(progs, strict: bool, *, flags=None, repeat: int = 1):
    """Static schedule proof before any worker spawns: attach the
    certificate to every lowered program (runtime failures cite it) and,
    under ``--strict``, refuse to launch on a denied certificate."""
    from ..analysis import check_schedule

    diags, cert = check_schedule(progs, flags=flags, repeat=repeat)
    for prog in progs:
        prog._sched_cert = cert
    if strict and not cert.ok:
        from ..machine.fused import FusedStrictError

        first = next(d for d in diags if d.is_error)
        raise FusedStrictError(
            f"execution refused under --strict: schedule certificate "
            f"denied ({', '.join(cert.codes)}) — {first.message}")
    return cert


def run_shared_mp(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_delay=None,
) -> SharedMachine:
    """Execute a ``//`` clause's shared kernels on real processes; the
    returned :class:`SharedMachine` holds post-state and counters."""
    _check(ir, strict)
    prog = lower_shared(ir)
    cert = _certify([prog], strict)
    if machine is None:
        machine = SharedMachine(ir.pmax, env)
    genv = machine.env
    pool = get_pool(_nprocs(processes, ir.pmax))
    session = ShmSession({name: genv[name] for name in prog.array_names})
    try:
        replies = pool.run(prog, session.spec(),
                           timeout or DEFAULT_TIMEOUT, _fault_delay)
        np.copyto(genv[prog.write_name], session.views[prog.write_name])
        machine.runtime_stats = _fill_stats(machine.stats, replies)
    except WorkerCrashError as err:
        from ..analysis import cite_certificate

        cite_certificate(err, cert)
        raise
    finally:
        session.close()
    return machine


def run_program_mp(
    pir,
    machine: SharedMachine,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_delay=None,
):
    """Execute a whole compiled program (``ProgramIR``) on the worker
    pool: every clause lowered once, ONE shared-memory session across
    all clauses and all ``repeat`` iterations, end-of-clause barriers
    only where the fusion pass kept them, and worker-side buffer swaps
    between iterations.  Returns ``(machine, barriers)``.

    Raises :class:`MpLoweringError` when the program has no whole-program
    mp form — a sequential clause, a clause without shared kernels, or an
    unpipelined time loop (a surviving redistribution boundary or an
    incompatible swap pair) — in which case the caller falls back to
    driving clauses individually, one session per clause per step.
    """
    steps = pir.steps
    for st in steps:
        _check(st.ir, strict)
    if pir.repeat > 1 and not pir.pipelined:
        raise MpLoweringError(
            f"time loop is not pipelined ({pir.pipeline_reason})")
    progs = [lower_shared(st.ir) for st in steps]
    cert = _certify(progs, strict, flags=pir.barrier_flags(),
                    repeat=pir.repeat)
    genv = machine.env
    names = sorted(
        set().union(*(set(p.array_names) for p in progs))
        | {n for pair in pir.swap for n in pair})
    for name in names:
        if name not in genv:
            raise KeyError(f"environment is missing array {name!r}")
    pool = get_pool(_nprocs(processes, pir.pmax))
    session = ShmSession({name: genv[name] for name in names})
    try:
        replies = pool.run_seq(
            progs, session.spec(), pir.repeat, pir.swap,
            pir.barrier_flags(), timeout or DEFAULT_TIMEOUT, _fault_delay)
        mapping = {name: name for name in names}
        if pir.repeat % 2:
            for a, b in pir.swap:
                mapping[a], mapping[b] = b, a
        for name in names:
            np.copyto(genv[name], session.views[mapping[name]])
        machine.runtime_stats = _fill_stats(machine.stats, replies)
    except WorkerCrashError as err:
        from ..analysis import cite_certificate

        cite_certificate(err, cert)
        raise
    finally:
        session.close()
    return machine, pir.barriers_per_step() * pir.repeat


def run_distributed_mp(
    ir,
    env: Dict[str, np.ndarray],
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    _fault_delay=None,
) -> MpMachine:
    """Execute a ``//`` clause's distributed program on real processes
    (real messages over the worker queues, overlap schedule)."""
    _check(ir, strict)
    prog = lower_dist(ir)
    cert = _certify([prog], strict)
    for name in prog.array_names:
        if name not in env:
            raise KeyError(f"environment is missing array {name!r}")
    machine = MpMachine(ir.pmax, prog.decomps)
    for name, arr in env.items():
        machine.arrays[name] = np.asarray(arr, dtype=np.float64).copy()
    pool = get_pool(_nprocs(processes, ir.pmax))
    session = ShmSession({name: env[name] for name in prog.array_names})
    try:
        replies = pool.run(prog, session.spec(),
                           timeout or DEFAULT_TIMEOUT, _fault_delay)
        machine.arrays[prog.write_name] = session.read(prog.write_name)
        machine.runtime_stats = _fill_stats(machine.stats, replies)
    except WorkerCrashError as err:
        from ..analysis import cite_certificate

        cite_certificate(err, cert)
        raise
    finally:
        session.close()
    return machine
