"""Per-worker observability for the multi-process runtime.

Each worker reports one :class:`RuntimeStats` record per run — wall-clock
split into kernel and barrier time plus real bytes moved over the
queues — alongside the per-node logical counters that feed the existing
:class:`~repro.machine.stats.MachineStats` machinery (so message/element
parity with the in-process backends stays assertable).

``PHASES`` is the worker run schedule; the pool's shared phase table
stores an index into it per worker so a crash or timeout can be
attributed to the phase (and node) the worker was in.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

__all__ = ["PHASES", "RuntimeStats"]

#: Worker phases in schedule order.  Low index = further behind — the
#: pool's blame heuristic picks the laggard on a hang.
PHASES = (
    "idle",
    "install",
    "fault-delay",
    "send",
    "gather",
    "barrier",
    "interior",
    "drain",
    "boundary",
    "done",
)

(PH_IDLE, PH_INSTALL, PH_DELAY, PH_SEND, PH_GATHER, PH_BARRIER,
 PH_INTERIOR, PH_DRAIN, PH_BOUNDARY, PH_DONE) = range(len(PHASES))


@dataclass
class RuntimeStats:
    """One worker's activity during one run (real wall-clock, real bytes)."""

    rank: int
    pid: int
    nodes: Tuple[int, ...] = ()
    kernel_s: float = 0.0      # fused interior + boundary kernel time
    barrier_s: float = 0.0     # pre-commit barrier wait
    send_count: int = 0
    send_bytes: int = 0
    recv_count: int = 0
    recv_bytes: int = 0
    total_s: float = 0.0
    #: the worker ran the njit (or interp-mode) native kernel this run
    native: bool = False

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def describe(self) -> str:
        return (
            f"worker {self.rank} (pid {self.pid}): "
            f"nodes {list(self.nodes)}"
            + ("  [native]" if self.native else "") + "  "
            f"kernel {self.kernel_s * 1e3:.2f} ms  "
            f"barrier {self.barrier_s * 1e3:.2f} ms  "
            f"sent {self.send_count} msg / {self.send_bytes} B  "
            f"recv {self.recv_count} msg / {self.recv_bytes} B  "
            f"total {self.total_s * 1e3:.2f} ms"
        )
