"""The persistent worker pool of the multi-process runtime.

One :class:`WorkerPool` per worker count, spawned on first use and
reused across runs — the process-level analogue of the plan cache.  Each
worker is a daemon process with a duplex command pipe, an inbox queue on
the shared message fabric, and a slot in the shared phase table.

Robustness model: the parent never blocks without a deadline.  It waits
on the command pipes *and* the process sentinels, so a worker dying
mid-run is detected immediately (not at timeout), and a hung run is
detected when the per-run timeout (plus a small reporting grace) lapses.
Both paths raise :class:`WorkerCrashError` naming the culprit worker,
its phase and node — blame goes to a dead worker first, else to the
worker furthest behind in the schedule (the laggard everyone else is
stuck waiting for).  The pool then self-heals by respawning every
worker; the next run reinstalls programs and proceeds normally.

:func:`shutdown_runtime` — also registered ``atexit`` and invoked by
``clear_plan_cache()`` — terminates every pool and unlinks any
shared-memory segments still registered, so test runs never leak
``/dev/shm`` entries or processes.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import signal
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Tuple

from .shm import unlink_leftovers
from .stats import PHASES
from .worker import worker_main

__all__ = [
    "DEFAULT_TIMEOUT",
    "WorkerCrashError",
    "WorkerPool",
    "get_pool",
    "install_signal_handlers",
    "runtime_info",
    "shutdown_runtime",
]

#: per-run execution timeout (seconds) when none is passed
DEFAULT_TIMEOUT = float(os.environ.get("REPRO_MP_TIMEOUT", "60"))

#: extra parent-side slack so workers report their own timeout first
_REPORT_GRACE = 5.0


def _start_method() -> str:
    override = os.environ.get("REPRO_MP_START")
    if override:
        return override
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerCrashError(RuntimeError):
    """A worker died or hung mid-run.  The pool has already respawned;
    the failed run's results are lost but the next run will succeed."""

    def __init__(self, message: str, rank: Optional[int] = None,
                 node: Optional[int] = None, phase: Optional[str] = None):
        super().__init__(message)
        self.rank = rank
        self.node = node
        self.phase = phase


class WorkerPool:
    """``nprocs`` persistent workers plus the parent-side protocol."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.method = _start_method()
        self._ctx = mp.get_context(self.method)
        self._run_seq = itertools.count(1)
        self.spawns = 0
        self._spawn()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> None:
        ctx = self._ctx
        if self.method == "fork":
            # fork children must inherit a *live* resource tracker (they
            # then share the parent's, and attach registration is a set
            # no-op); a worker forked before the tracker exists would
            # lazily spawn a private one whose exit-time cleanup races
            # the parent's unlink and spews "leaked shared_memory"
            # warnings
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        self.barrier = ctx.Barrier(self.nprocs)
        self.phase_table = ctx.Array("i", 2 * self.nprocs, lock=False)
        self.inboxes = [ctx.Queue() for _ in range(self.nprocs)]
        self.conns, self.procs = [], []
        for rank in range(self.nprocs):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(rank, self.nprocs, child, self.inboxes,
                      self.barrier, self.phase_table,
                      self.method != "fork"),
                daemon=True, name=f"repro-mp-w{rank}")
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)
        self.installed = set()
        self.spawns += 1

    def alive(self) -> bool:
        return bool(self.procs) and all(p.is_alive() for p in self.procs)

    def pids(self) -> List[int]:
        return [p.pid for p in self.procs]

    def phases(self) -> List[Tuple[str, int]]:
        """Per-worker (phase name, current node) snapshot."""
        out = []
        for r in range(self.nprocs):
            pi = int(self.phase_table[2 * r])
            out.append((PHASES[pi] if 0 <= pi < len(PHASES) else str(pi),
                        int(self.phase_table[2 * r + 1])))
        return out

    def _teardown(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except Exception:
                pass
        for q in self.inboxes:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        for p in self.procs:
            if p.is_alive():
                p.terminate()
        for p in self.procs:
            p.join(timeout=2.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=2.0)
        self.conns, self.procs, self.inboxes = [], [], []

    def respawn(self) -> None:
        """Self-heal: replace every worker (installed programs drop and
        reinstall lazily on the next run)."""
        self._teardown()
        self._spawn()

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for p in self.procs:
            p.join(timeout=0.5)
        self._teardown()

    # -- failure attribution ----------------------------------------------

    def _fail(self, reason: str, rank: Optional[int],
              exitcode: Optional[int] = None,
              fallback: Optional[int] = None) -> None:
        snapshot = self.phases()
        dead = [r for r, p in enumerate(self.procs) if not p.is_alive()]
        culprit = rank
        if culprit is None:
            # blame a dead worker first, else the live laggard — the
            # worker earliest in the schedule (idle/done workers have
            # already finished or reported, so they are not stuck)
            active = [r for r in range(self.nprocs)
                      if snapshot[r][0] not in ("idle", "done")]
            if dead:
                culprit = dead[0]
            elif active:
                order = {name: i for i, name in enumerate(PHASES)}
                culprit = min(
                    active,
                    key=lambda r: order.get(snapshot[r][0], len(PHASES)))
            else:
                culprit = fallback if fallback is not None else 0
        phase, node = snapshot[culprit]
        table = ", ".join(
            f"w{r}={ph}" + (f"@n{nd}" if nd >= 0 else "")
            for r, (ph, nd) in enumerate(snapshot))
        msg = (f"mp runtime: worker {culprit} {reason} in phase {phase!r}"
               + (f" on node {node}" if node >= 0 else "")
               + (f" (exit code {exitcode})" if exitcode is not None else "")
               + f"; workers: [{table}]; pool respawned")
        try:
            self.respawn()
        except Exception:
            pass
        raise WorkerCrashError(msg, rank=culprit,
                               node=node if node >= 0 else None, phase=phase)

    # -- protocol ----------------------------------------------------------

    def _send(self, rank: int, msg: tuple) -> None:
        try:
            self.conns[rank].send(msg)
        except (OSError, ValueError):
            self._fail("died (command pipe closed)", rank,
                       exitcode=self.procs[rank].exitcode)

    def _await_each(self, match, deadline: float, what: str) -> list:
        """Collect one matching reply per worker; any sentinel firing,
        error report or deadline lapse raises WorkerCrashError."""
        got = {}
        while len(got) < self.nprocs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail(f"timed out waiting for {what}", None)
            by_conn = {c: r for r, c in enumerate(self.conns)}
            sentinels = {p.sentinel: r for r, p in enumerate(self.procs)}
            ready = _conn_wait(list(by_conn) + list(sentinels),
                               timeout=remaining)
            if not ready:
                self._fail(f"timed out waiting for {what}", None)
            for obj in ready:
                if obj in sentinels:
                    r = sentinels[obj]
                    if r not in got:
                        self._fail("died", r,
                                   exitcode=self.procs[r].exitcode)
                    continue
                rank = by_conn[obj]
                try:
                    msg = obj.recv()
                except (EOFError, OSError):
                    self._fail("died (connection lost)", rank,
                               exitcode=self.procs[rank].exitcode)
                if msg[0] == "err":
                    _, _rid, r, phase, node, tb = msg
                    tail = tb.strip().splitlines()[-1] if tb else "error"
                    # a broken barrier / drain timeout usually means some
                    # *other* worker is stuck — let the snapshot decide
                    blame = None if ("BrokenBarrierError" in tb
                                    or "TimeoutError" in tb) else r
                    self._fail(f"failed ({tail})", blame, fallback=r)
                out = match(msg)
                if out is not None and rank not in got:
                    got[rank] = out
        return [got[r] for r in range(self.nprocs)]

    def install(self, prog, deadline: float) -> None:
        if prog.token in self.installed:
            return
        for rank in range(self.nprocs):
            self._send(rank, ("plan", prog.payload_for(rank, self.nprocs)))

        def match(msg):
            return True if (msg[0] == "planok"
                            and msg[1] == prog.token) else None

        self._await_each(match, deadline, "program install")
        self.installed.add(prog.token)

    def run(self, prog, shm_spec, timeout: Optional[float] = None,
            fault_delay=None) -> list:
        """Execute one installed (or auto-installed) program; returns the
        per-rank ``(RuntimeStats, {node: counters})`` replies."""
        timeout = float(timeout) if timeout else DEFAULT_TIMEOUT
        deadline = time.monotonic() + timeout + _REPORT_GRACE
        if not self.alive():
            self.respawn()
        self.install(prog, deadline)
        run_id = next(self._run_seq)
        for rank in range(self.nprocs):
            self._send(rank, ("run", prog.token, run_id, shm_spec,
                              timeout, fault_delay))

        def match(msg):
            if msg[0] == "done" and msg[1] == run_id:
                return (msg[3], msg[4])
            return None

        return self._await_each(match, deadline, f"run {run_id}")

    def run_seq(self, progs, shm_spec, steps: int, swap, flags,
                timeout: Optional[float] = None, fault_delay=None) -> list:
        """Execute a pipelined program: ``steps`` iterations of the
        installed clause sequence against one set of segments, buffer
        pairs in *swap* exchanged worker-side after every step.  One
        command, one reply per worker for the whole time loop."""
        timeout = float(timeout) if timeout else DEFAULT_TIMEOUT
        deadline = time.monotonic() + timeout + _REPORT_GRACE
        if not self.alive():
            self.respawn()
        for prog in progs:
            self.install(prog, deadline)
        run_id = next(self._run_seq)
        tokens = tuple(prog.token for prog in progs)
        for rank in range(self.nprocs):
            self._send(rank, ("runseq", tokens, run_id, shm_spec,
                              int(steps), tuple(swap), tuple(flags),
                              timeout, fault_delay))

        def match(msg):
            if msg[0] == "done" and msg[1] == run_id:
                return (msg[3], msg[4])
            return None

        return self._await_each(match, deadline, f"program run {run_id}")


# ---------------------------------------------------------------------------
# pool registry + global shutdown
# ---------------------------------------------------------------------------

_POOLS: Dict[int, WorkerPool] = {}
_ATEXIT_REGISTERED = False
_SIGNALS_INSTALLED = False


def install_signal_handlers(signals=(signal.SIGTERM,)) -> bool:
    """Drain and dispose every worker pool *before* interpreter teardown
    on a terminating signal.

    The atexit-registered :func:`shutdown_runtime` is not enough under
    SIGTERM: Python's default action kills the process without running
    atexit callbacks at all, and even when a handler re-enables them the
    interpreter is already reaping daemonized children — the pool's
    orderly ``exit``/terminate/join protocol races that teardown and can
    leave ``/dev/shm`` segments behind.  This installs a handler (once,
    chaining any previously installed Python-level handler) that shuts
    the runtime down synchronously, then restores the default action and
    re-raises the signal so the exit status stays conventional
    (``128+signum``).

    Returns ``False`` — without installing anything — when called off
    the main thread, where CPython forbids ``signal.signal``; callers
    like the serve daemon register their own loop-level handlers
    instead.  Safe to call repeatedly.
    """
    global _SIGNALS_INSTALLED
    if _SIGNALS_INSTALLED:
        return True

    def _make(prev):
        def _handler(signum, frame):
            shutdown_runtime()
            if prev is not None:
                prev(signum, frame)
                return
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
        return _handler

    try:
        for sig in signals:
            prev = signal.getsignal(sig)
            if prev is signal.SIG_IGN:  # deliberately ignored: respect it
                continue
            chained = prev if callable(prev) else None
            signal.signal(sig, _make(chained))
    except ValueError:  # not the main thread
        return False
    _SIGNALS_INSTALLED = True
    return True


def get_pool(nprocs: int) -> WorkerPool:
    """The persistent pool for *nprocs* workers (spawned on first use,
    revived if its workers died)."""
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(nprocs)
    if pool is not None:
        if not pool.alive():
            pool.respawn()
        return pool
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_runtime)
        _ATEXIT_REGISTERED = True
    install_signal_handlers()  # best-effort; no-op off the main thread
    pool = WorkerPool(nprocs)
    _POOLS[nprocs] = pool
    return pool


def shutdown_runtime() -> None:
    """Terminate every worker pool and unlink any shared-memory segment
    this process still has registered.  Safe to call repeatedly; also
    runs atexit and from ``clear_plan_cache()``."""
    for pool in list(_POOLS.values()):
        try:
            pool.shutdown()
        except Exception:
            pass
    _POOLS.clear()
    unlink_leftovers()


def runtime_info() -> Dict[int, Dict[str, object]]:
    """Live pools: worker pids, spawn generations, installed programs."""
    return {
        nprocs: {"pids": pool.pids(), "spawns": pool.spawns,
                 "installed": len(pool.installed)}
        for nprocs, pool in _POOLS.items()
    }
