"""Lowering compiled plans to multi-process node programs.

The fused backend (:mod:`repro.pipeline.kernels`) already proves the
paper's point once per plan: membership index vectors, owning-processor
vectors and gather/scatter keys are all closed-form compile-time
objects.  This module re-targets that precomputation at a *global*
address space: workers index the shared-memory global arrays directly,
so every key here is a global ``f_k(i)`` index vector (tuple of vectors
for grid layouts) rather than a node-local flat offset.

One :class:`MpProgram` per (plan, flavor) — both flavors share the same
worker schedule:

* ``shared``  — degenerate: no sends, every read is a direct global
  gather, all lanes commit as "interior" after the pre-commit barrier
  (which is exactly the §2.9 phase barrier).
* ``dist``    — the §2.10 overlap schedule: per-read send plans (global
  gather keys split per destination node), per-read local/remote lane
  fills, and the `split-interior` lane split with per-lane-set global
  write keys.

Programs are cached on the plan's ``FusedKernels`` object, so they share
the kernel cache's lifetime and ``clear_plan_cache()`` drops them too.
Every program carries a process-unique ``token`` that keys the workers'
installed-plan LRU.

Counter conventions mirror the fused executors exactly (send ``count``
charges iterations even when every lane is local; one message per
(read, peer) pair) — that is what keeps the message-parity asserts of
the equivalence suite valid across backends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..core.clause import Ordering

__all__ = [
    "MpLoweringError",
    "MpNode",
    "MpProgram",
    "MpRead",
    "MpSend",
    "lower_dist",
    "lower_shared",
]

_TOKENS = itertools.count(1)


class MpLoweringError(ValueError):
    """The plan has no multi-process form (reason in ``args[0]``); the
    dispatcher falls back to the in-process fused path."""


@dataclass
class MpSend:
    """One read access's send plan on one node."""

    pos: int                  # read position (message tag)
    name: str
    count: int                # |Reside_p| — charged as iterations
    #: ((destination node, global gather key restricted to it), ...)
    peers: tuple = ()


@dataclass
class MpRead:
    """How one node assembles one read's value vector."""

    pos: int
    name: str
    #: lanes resident locally; ``None`` = every lane is a direct global
    #: load (shared flavor, replicated reads)
    local_pos: object = None
    #: global index key (tuple of int64 vectors, one per array dim)
    local_key: tuple = ()
    #: ((source node, lane positions its message fills), ...)
    sources: tuple = ()


@dataclass
class MpNode:
    """One node's precomputed program: send plan, gather plan, lane
    split, and global scatter keys per lane set."""

    p: int
    n: int
    sends: tuple = ()
    reads: tuple = ()
    interior: np.ndarray = None
    boundary: np.ndarray = None
    idx_interior: tuple = ()
    idx_boundary: tuple = ()
    wkey_interior: tuple = ()
    wkey_boundary: tuple = ()


@dataclass
class MpProgram:
    """Everything the worker pool needs for one plan."""

    token: int
    flavor: str               # "shared" | "dist"
    source: str               # generated kernel source (workers exec it)
    nreads: int
    write_name: str
    array_names: Tuple[str, ...]
    nodes: tuple = ()
    pmax: int = 0
    decomps: Dict[str, object] = field(default_factory=dict)
    #: njit-compilable scalar-loop source (None when the clause has no
    #: native rendering); each worker probes numba on install and
    #: compiles this once, falling back to the NumPy kernel otherwise
    native_source: object = None

    def payload_for(self, rank: int, nprocs: int) -> tuple:
        """The install message for one worker: only its own nodes
        (round-robin ``node % nprocs``) ride the pipe."""
        mine = tuple(nd for nd in self.nodes if nd.p % nprocs == rank)
        return (self.token, self.flavor, self.source, self.nreads,
                self.write_name, mine, self.native_source)


def _i64(a) -> np.ndarray:
    return np.asarray(a, dtype=np.int64)


def _key(acc, idx_vecs) -> tuple:
    """Global array index key of *acc* over membership vectors."""
    from ..machine.vectorize import _array_vecs

    return tuple(_i64(a) for a in _array_vecs(acc, idx_vecs))


def _empty_key(acc) -> tuple:
    return tuple(np.zeros(0, dtype=np.int64) for _ in acc.funcs)


def _native_source_of(ir):
    """The clause's njit-compilable scalar-loop source, or ``None`` when
    it has no native rendering (the worker then keeps the NumPy kernel).
    Rendering is pure codegen — numba availability is probed worker-side
    at install time, not here."""
    from ..pipeline.native import NativeBuildError, render_native_source

    try:
        return render_native_source(ir.clause)
    except NativeBuildError:
        return None


def _kernels_of(ir):
    k = getattr(ir, "kernels", None)
    if k is None:
        raise MpLoweringError(
            "plan carries no fused kernels (lower-kernels fallback)")
    if ir.clause.ordering is not Ordering.PAR:
        raise MpLoweringError(
            "sequential (•) clause is a serial chain; scalar path kept")
    return k


def _cached(ir, flavor: str, build):
    k = _kernels_of(ir)
    cache = getattr(k, "_mp_programs", None)
    if cache is None:
        cache = {}
        k._mp_programs = cache
    prog = cache.get(flavor)
    if prog is None:
        prog = build(ir, k)
        cache[flavor] = prog
    return prog


# ---------------------------------------------------------------------------
# shared flavor
# ---------------------------------------------------------------------------

def _build_shared(ir, k) -> MpProgram:
    if k.shared is None:
        raise MpLoweringError(k.shared_note or "no shared kernels")
    names = {k.write_name}
    nodes = []
    for p, nk in enumerate(k.shared):
        reads = []
        for pos, (name, ai) in enumerate(nk.read_keys):
            key = ai if isinstance(ai, tuple) else (ai,)
            reads.append(MpRead(pos=pos, name=name, local_pos=None,
                                local_key=tuple(_i64(a) for a in key)))
            names.add(name)
        ndims = len(nk.idx)
        wdims = len(nk.write_key_vecs)
        nodes.append(MpNode(
            p=p, n=int(nk.n), sends=(), reads=tuple(reads),
            interior=np.arange(nk.n, dtype=np.int64),
            boundary=np.zeros(0, dtype=np.int64),
            idx_interior=tuple(_i64(v) for v in nk.idx),
            idx_boundary=tuple(np.zeros(0, np.int64) for _ in range(ndims)),
            wkey_interior=tuple(_i64(a) for a in nk.write_key_vecs),
            wkey_boundary=tuple(np.zeros(0, np.int64) for _ in range(wdims)),
        ))
    return MpProgram(
        token=next(_TOKENS), flavor="shared", source=k.source,
        nreads=k.nreads, write_name=k.write_name,
        array_names=tuple(sorted(names)), nodes=tuple(nodes), pmax=ir.pmax,
        native_source=_native_source_of(ir),
    )


def lower_shared(ir) -> MpProgram:
    """The §2.9 template over real processes: reuses the fused shared
    kernels verbatim (their keys are already global)."""
    return _cached(ir, "shared", _build_shared)


# ---------------------------------------------------------------------------
# distributed flavor
# ---------------------------------------------------------------------------

def _build_dist(ir, k) -> MpProgram:
    from ..machine.vectorize import (
        _interior_mask,
        _member_vecs,
        _proc_linear,
    )

    if ir.write is None:
        raise MpLoweringError("plan carries no substituted write access")
    if ir.write.replicated:
        raise MpLoweringError("replicated write (per-copy broadcast)")
    for acc in ir.reads:
        if not acc.placed:
            raise MpLoweringError(
                f"read {acc.name!r} carries no decomposition")

    names = {ir.write.name} | {acc.name for acc in ir.reads}
    decomps = {ir.write.name: ir.write.dec}
    for acc in ir.reads:
        decomps.setdefault(acc.name, acc.dec)

    nodes = []
    for p in range(ir.pmax):
        # -- send plan: Reside_p per read, destinations computed ----------
        sends = []
        for acc in ir.reads:
            if acc.replicated:
                continue
            r_idx = _member_vecs(ir, acc, p)
            cnt = int(r_idx[0].size)
            if cnt == 0:
                continue
            dest = _proc_linear(ir.write, r_idx)
            key = _key(acc, r_idx)
            peers = tuple(
                (int(q), tuple(a[dest == q] for a in key))
                for q in np.unique(dest) if int(q) != p
            )
            sends.append(MpSend(pos=acc.pos, name=acc.name, count=cnt,
                                peers=peers))

        # -- gather plan: Modify_p, lanes split local/remote --------------
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        reads = []
        for acc in ir.reads:
            if acc.replicated:
                key = _key(acc, idx_vecs) if n else _empty_key(acc)
                reads.append(MpRead(pos=acc.pos, name=acc.name,
                                    local_pos=None, local_key=key))
                continue
            if n == 0:
                reads.append(MpRead(pos=acc.pos, name=acc.name,
                                    local_pos=np.zeros(0, np.int64),
                                    local_key=_empty_key(acc)))
                continue
            src = _proc_linear(acc, idx_vecs)
            local = src == p
            local_pos = _i64(np.nonzero(local)[0])
            key = _key(acc, [v[local] for v in idx_vecs])
            sources = tuple(
                (int(s), _i64(np.nonzero(src == s)[0]))
                for s in np.unique(src[~local])
            )
            reads.append(MpRead(pos=acc.pos, name=acc.name,
                                local_pos=local_pos, local_key=key,
                                sources=sources))

        # -- commit plan: interior/boundary split, global write keys ------
        if n:
            wkey = _key(ir.write, idx_vecs)
            mask = _interior_mask(ir, p, idx_vecs)
            interior = _i64(np.nonzero(mask)[0])
            boundary = _i64(np.nonzero(~mask)[0])
        else:
            wkey = _empty_key(ir.write)
            interior = boundary = np.zeros(0, dtype=np.int64)
        nodes.append(MpNode(
            p=p, n=n, sends=tuple(sends), reads=tuple(reads),
            interior=interior, boundary=boundary,
            idx_interior=tuple(_i64(v)[interior] for v in idx_vecs),
            idx_boundary=tuple(_i64(v)[boundary] for v in idx_vecs),
            wkey_interior=tuple(a[interior] for a in wkey),
            wkey_boundary=tuple(a[boundary] for a in wkey),
        ))
    return MpProgram(
        token=next(_TOKENS), flavor="dist", source=k.source,
        nreads=k.nreads, write_name=ir.write.name,
        array_names=tuple(sorted(names)), nodes=tuple(nodes),
        pmax=ir.pmax, decomps=decomps,
        native_source=_native_source_of(ir),
    )


def lower_dist(ir) -> MpProgram:
    """The §2.10 overlap template over real processes, with every key
    re-derived against the global address space."""
    return _cached(ir, "dist", _build_dist)
