"""Shared-memory backing for the multi-process runtime.

The parent owns every segment: one :class:`ShmSession` per run creates a
``multiprocessing.shared_memory`` segment per global array, copies the
environment in, and unlinks everything when the run finishes.  Workers
attach read/write views through the same float64 ndarray layout, so the
gather/scatter index arrays the lowering precomputes address the global
arrays zero-copy — placement is one memcpy per array instead of the
distributed machines' per-element Python scatter loop.

Attachment deliberately bypasses the per-process resource tracker
(``track=False`` where available, an ``unregister`` call otherwise):
only the creating parent may unlink, and a tracked attach would spawn
spurious "leaked shared_memory" warnings when a worker exits.

A module-level registry of segment names created by this process backs
:func:`unlink_leftovers`, the atexit/``shutdown_runtime`` safety net —
test runs must never leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, FrozenSet, Tuple

import numpy as np

__all__ = [
    "ShmSession",
    "active_segments",
    "attach_segment",
    "unlink_leftovers",
]

_COUNTER = itertools.count()

#: names of segments created (and not yet unlinked) by this process
_ACTIVE: set = set()


def _segment_name() -> str:
    # short enough for macOS's 31-char POSIX name limit
    return f"repro-mp-{os.getpid() % 100000}-{next(_COUNTER)}"


def attach_segment(name: str,
                   untrack: bool = False) -> shared_memory.SharedMemory:
    """Attach an existing segment without taking over its cleanup (the
    creating parent owns the unlink).

    *untrack* matters only on Python < 3.13, where attaching registers
    the name with the resource tracker: a spawn-started worker has its
    own tracker and must unregister (or its exit would unlink a segment
    the parent still uses), while a fork-started worker shares the
    parent's tracker — there the duplicate registration is a set no-op
    and unregistering would strip the parent's own entry."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        seg = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
        return seg


class ShmSession:
    """The shared-memory image of one run's global arrays.

    ``views[name]`` is the parent's float64 ndarray over the segment;
    :meth:`spec` is what workers need to attach their own views.  The
    session must be closed (normally in a ``finally``) — closing drops
    the views, closes and unlinks every segment.
    """

    def __init__(self, arrays: Dict[str, np.ndarray]):
        self.segs: Dict[str, shared_memory.SharedMemory] = {}
        self.views: Dict[str, np.ndarray] = {}
        try:
            for name, arr in arrays.items():
                a = np.ascontiguousarray(arr, dtype=np.float64)
                seg = shared_memory.SharedMemory(
                    create=True, size=max(a.nbytes, 8), name=_segment_name())
                _ACTIVE.add(seg.name)
                view = np.ndarray(a.shape, dtype=np.float64, buffer=seg.buf)
                view[...] = a
                self.segs[name] = seg
                self.views[name] = view
        except Exception:
            self.close()
            raise

    def spec(self) -> Dict[str, Tuple[str, Tuple[int, ...]]]:
        """``{array: (segment name, shape)}`` — the workers' attach map."""
        return {name: (seg.name, self.views[name].shape)
                for name, seg in self.segs.items()}

    def read(self, name: str) -> np.ndarray:
        """Copy an array out of shared memory (safe to keep after close)."""
        return np.array(self.views[name])

    def close(self) -> None:
        self.views = {}
        segs, self.segs = self.segs, {}
        for seg in segs.values():
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass
            _ACTIVE.discard(seg.name)


def active_segments() -> FrozenSet[str]:
    """Names of segments this process created and has not unlinked."""
    return frozenset(_ACTIVE)


def unlink_leftovers() -> int:
    """Unlink any segment a crashed/interrupted session left behind.
    Returns how many were reclaimed."""
    reclaimed = 0
    for name in list(_ACTIVE):
        try:
            seg = attach_segment(name)
            seg.close()
            seg.unlink()
            reclaimed += 1
        except Exception:
            pass
        _ACTIVE.discard(name)
    return reclaimed
