"""Worker process main loop of the multi-process runtime.

Each worker owns a command pipe to the parent, one inbox queue (its end
of the inter-node message fabric) and a slice of the pool's shared phase
table.  Installed programs are kept in a small LRU keyed by the
program's token; the kernel source is ``exec``-compiled once per
install, exactly like the fused backend does in-process.

A run follows the overlap schedule against the shared-memory global
arrays:

1. **send**      — gather pre-state payloads with the precomputed global
                   keys, put one message per (read, peer) on the
                   destination worker's inbox;
2. **gather**    — assemble each owned node's read value vectors from
                   direct global loads (remote lanes left to fill);
3. **barrier**   — the pre-commit barrier: every send and local gather
                   on every worker happened against pre-state;
4. **interior**  — fused interior kernel + global scatter commit;
5. **drain**     — blocking inbox reads fill the remote lanes (messages
                   are matched by ``(dst node, src node, read pos)`` and
                   stale run ids discarded);
6. **boundary**  — fused boundary kernel + commit.

Every blocking operation carries the remaining per-run timeout, so a
worker never hangs: it reports a failure (with its phase) and the parent
turns that into a :class:`~repro.runtime.pool.WorkerCrashError`.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from collections import OrderedDict
from typing import Dict

import numpy as np

from .shm import attach_segment
from .stats import (
    PH_BARRIER,
    PH_BOUNDARY,
    PH_DELAY,
    PH_DONE,
    PH_DRAIN,
    PH_GATHER,
    PH_IDLE,
    PH_INSTALL,
    PH_INTERIOR,
    PH_SEND,
    RuntimeStats,
)

__all__ = ["worker_main"]

_PLAN_LRU = 64


def _compile_kernel(source: str):
    ns: Dict[str, object] = {"_np": np}
    exec(compile(source, "<mp-kernel>", "exec"), ns)  # noqa: S102
    return ns["_rhs"], ns.get("_guard")


class _Installed:
    """One installed program on this worker: compiled kernel + my nodes.

    When the payload carries a native scalar-loop source and this
    worker's numba probe succeeds, the njit dispatcher is compiled here
    — once per install, so pipelined time loops never pay JIT in the hot
    path — and ``_commit`` routes through it; any probe or compile
    failure silently keeps the NumPy kernel (same results, the parent's
    trace already notes availability)."""

    def __init__(self, payload):
        (self.token, self.flavor, self.source, self.nreads,
         self.write_name, self.my_nodes, native_source) = payload
        self.rhs, self.guard = _compile_kernel(self.source)
        self.native_entry = None
        self.native_jit_s = 0.0
        if native_source is not None:
            from ..pipeline.native import compile_native_entry, native_support

            if native_support().available:
                try:
                    self.native_entry, self.native_jit_s = \
                        compile_native_entry(native_source)
                except Exception:
                    self.native_entry = None


def _zero_counts() -> Dict[str, int]:
    return {"sends": 0, "recvs": 0, "elements_sent": 0,
            "elements_received": 0, "local_updates": 0,
            "iterations": 0, "barriers": 0}


def _index(key: tuple):
    return key if len(key) > 1 else key[0]


def _flat(key: tuple, shape) -> np.ndarray:
    """Flatten a global multi-dim index key against *shape*."""
    if len(key) == 1:
        return np.ascontiguousarray(key[0], dtype=np.int64)
    if key[0].size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.ravel_multi_index(key, shape).astype(np.int64, copy=False)


def _native_node_data(node, which, idx_sub, wkey, shape):
    """The native entry's stacked index + flat scatter arrays for one
    lane set, cached on the (worker-local, unpickled) node object —
    computed once per install regardless of step count."""
    cache = getattr(node, "_native_cache", None)
    if cache is None:
        cache = node._native_cache = {}
    entry = cache.get(which)
    if entry is None or entry[0] != shape:
        idx2 = (np.ascontiguousarray(np.stack(
                    [np.asarray(v, dtype=np.int64) for v in idx_sub]))
                if idx_sub else np.zeros((1, 0), dtype=np.int64))
        entry = cache[which] = (shape, idx2, _flat(wkey, shape))
    return entry[1], entry[2]


def _commit(inst, node, rvals, lanes, idx_sub, wkey, target, count,
            which):
    """Kernel + global scatter over one lane set (mirrors the fused
    executors' commit, with global write keys).  With an installed
    native entry the whole gather/guard/compute/scatter is one call into
    the njit scalar loop; otherwise the NumPy kernel runs."""
    m = int(lanes.size)
    if not m:
        return
    if inst.native_entry is not None:
        idx2, scatter = _native_node_data(node, which, idx_sub, wkey,
                                          target.shape)
        stored = inst.native_entry(idx2, rvals, lanes, scatter,
                                   target.reshape(-1))
        count["local_updates"] += int(stored)
        return
    from ..machine.vectorize import _as_value_vec

    sub_r = [v[lanes] for v in rvals]
    values = _as_value_vec(inst.rhs(idx_sub, sub_r), m)
    if inst.guard is not None:
        mask = np.broadcast_to(
            np.asarray(inst.guard(idx_sub, sub_r), dtype=bool), (m,))
        wkey = tuple(a[mask] for a in wkey)
        values = values[mask]
    target[_index(wkey)] = values
    count["local_updates"] += int(values.size)


def _send_buf(node, pos, q, key, shape):
    """The reusable payload buffer + flat gather index for one
    (node, read, peer) send, cached on the worker-local node object."""
    cache = getattr(node, "_send_bufs", None)
    if cache is None:
        cache = node._send_bufs = {}
    entry = cache.get((pos, q))
    if entry is None or entry[0] != shape:
        flat = _flat(key, shape)
        entry = cache[(pos, q)] = (
            shape, np.empty(flat.size, dtype=np.float64), flat)
    return entry[1], entry[2]


def _run_clause(inst, rid, arrays, remaining, rank, nprocs, inboxes,
                barrier, set_phase, stats, counts, stash):
    """One clause of the overlap schedule: send, gather, pre-commit
    barrier, interior, drain, boundary.  *rid* tags this clause's
    messages: ``(run id, clause sequence number)``.  *stash* holds
    early messages of later clauses — at a fused (barrier-free) clause
    boundary a fast peer may already be sending for the next clause
    while this worker still drains the current one."""
    inbox = inboxes[rank]
    first = inst.my_nodes[0].p if inst.my_nodes else -1

    # ---- send phase -----------------------------------------------------
    # Payload buffers are reused across steps of a pipelined loop (and
    # across runs): between two uses of the same (node, read, peer)
    # buffer sits at least one global pre-commit barrier that every
    # worker only passes after the previous message was drained — i.e.
    # fully pickled off this buffer by the queue's feeder thread — so
    # depth-1 reuse can never corrupt an in-flight message.
    for node in inst.my_nodes:
        set_phase(PH_SEND, node.p)
        c = counts[node.p]
        for s in node.sends:
            c["iterations"] += s.count
            src_arr = arrays[s.name]
            for q, key in s.peers:
                buf, flat = _send_buf(node, s.pos, q, key, src_arr.shape)
                np.take(src_arr.reshape(-1), flat, out=buf)
                inboxes[q % nprocs].put((rid, q, node.p, s.pos, buf))
                c["sends"] += 1
                c["elements_sent"] += int(buf.size)
                stats.send_count += 1
                stats.send_bytes += int(buf.nbytes)

    # ---- gather phase ---------------------------------------------------
    rvals_by = {}
    missing = {}  # (dst node, src node, read pos) -> (row view, fill lanes)
    for node in inst.my_nodes:
        set_phase(PH_GATHER, node.p)
        counts[node.p]["iterations"] += node.n
        if node.n == 0:
            continue
        # stacked float64[nreads, n] — row views fill in place, and the
        # whole block is what a native entry consumes as `_r`
        rvals = np.empty((max(inst.nreads, 0), node.n), dtype=np.float64)
        for r in node.reads:
            vals = rvals[r.pos]
            if r.local_pos is None:
                vals[:] = arrays[r.name][_index(r.local_key)]
            elif r.local_pos.size:
                vals[r.local_pos] = arrays[r.name][_index(r.local_key)]
            for src, fill in r.sources:
                missing[(node.p, src, r.pos)] = (vals, fill)
        rvals_by[node.p] = rvals

    # ---- pre-commit barrier ---------------------------------------------
    set_phase(PH_BARRIER, first)
    t0 = time.perf_counter()
    barrier.wait(remaining())
    stats.barrier_s += time.perf_counter() - t0
    for node in inst.my_nodes:
        counts[node.p]["barriers"] += 1

    # ---- interior kernels (messages may still be in flight) -------------
    t0 = time.perf_counter()
    for node in inst.my_nodes:
        if node.n:
            set_phase(PH_INTERIOR, node.p)
            _commit(inst, node, rvals_by[node.p], node.interior,
                    node.idx_interior, node.wkey_interior,
                    arrays[inst.write_name], counts[node.p], "int")
    stats.kernel_s += time.perf_counter() - t0

    # ---- drain ----------------------------------------------------------
    set_phase(PH_DRAIN, first)

    def fill(dst, src, pos, payload):
        entry = missing.pop((dst, src, pos), None)
        if entry is None:
            return
        vals, lanes = entry
        payload = np.asarray(payload, dtype=np.float64)
        vals[lanes] = payload
        counts[dst]["recvs"] += 1
        counts[dst]["elements_received"] += int(payload.size)
        stats.recv_count += 1
        stats.recv_bytes += int(payload.nbytes)

    for dst, src, pos, payload in stash.pop(rid, ()):
        fill(dst, src, pos, payload)
    while missing:
        try:
            item = inbox.get(timeout=remaining())
        except queue_mod.Empty:
            raise TimeoutError(
                f"worker {rank} timed out draining messages "
                f"({len(missing)} pending)") from None
        mid, dst, src, pos, payload = item
        if mid == rid:
            fill(dst, src, pos, payload)
        elif mid[0] == rid[0] and mid[1] > rid[1]:
            # early message of a later clause in this same run sequence
            stash.setdefault(mid, []).append((dst, src, pos, payload))
        # else: stale message from an aborted run — discard

    # ---- boundary kernels ------------------------------------------------
    t0 = time.perf_counter()
    for node in inst.my_nodes:
        if node.n:
            set_phase(PH_BOUNDARY, node.p)
            _commit(inst, node, rvals_by[node.p], node.boundary,
                    node.idx_boundary, node.wkey_boundary,
                    arrays[inst.write_name], counts[node.p], "bnd")
    stats.kernel_s += time.perf_counter() - t0


def _make_remaining(rank, timeout):
    deadline = time.monotonic() + timeout

    def remaining() -> float:
        left = deadline - time.monotonic()
        if left <= 0:
            raise TimeoutError(
                f"worker {rank} exceeded the {timeout:.1f}s run timeout")
        return left

    return remaining


def _run(inst, run_id, arrays, timeout, fault_delay, rank, nprocs,
         inboxes, barrier, set_phase):
    t_start = time.perf_counter()
    stats = RuntimeStats(rank=rank, pid=os.getpid(),
                         nodes=tuple(nd.p for nd in inst.my_nodes),
                         native=inst.native_entry is not None)
    counts = {nd.p: _zero_counts() for nd in inst.my_nodes}
    remaining = _make_remaining(rank, timeout)

    first = inst.my_nodes[0].p if inst.my_nodes else -1
    if fault_delay is not None and fault_delay[0] == rank:
        # test hook: park this worker so crash/timeout paths are
        # deterministically exercisable
        set_phase(PH_DELAY, first)
        time.sleep(float(fault_delay[1]))

    _run_clause(inst, (run_id, 0), arrays, remaining, rank, nprocs,
                inboxes, barrier, set_phase, stats, counts, {})
    set_phase(PH_DONE, first)
    stats.total_s = time.perf_counter() - t_start
    return stats, counts


def _run_seq(insts, run_id, arrays, steps, swap, flags, timeout,
             fault_delay, rank, nprocs, inboxes, barrier, set_phase):
    """A whole pipelined program: ``steps`` iterations of the installed
    clause sequence against one set of attached segments.

    Every worker executes the same barrier.wait sequence (one pre-commit
    wait per clause, plus one end-of-clause wait where ``flags[k]`` keeps
    the barrier), so mp.Barrier generations stay globally ordered.  The
    end-of-clause barrier is skipped at fused boundaries — the fusion
    certificate rules out cross-processor traffic there — and after the
    very last clause of the very last step.  Buffer pairs in *swap* are
    exchanged in the local array dict after every step (zero-copy; the
    parent maps segment names back accordingly)."""
    t_start = time.perf_counter()
    nodes = sorted({nd.p for inst in insts for nd in inst.my_nodes})
    stats = RuntimeStats(rank=rank, pid=os.getpid(), nodes=tuple(nodes),
                         native=any(inst.native_entry is not None
                                    for inst in insts))
    counts = {p: _zero_counts() for p in nodes}
    remaining = _make_remaining(rank, timeout)
    stash: Dict[tuple, list] = {}

    first = nodes[0] if nodes else -1
    if fault_delay is not None and fault_delay[0] == rank:
        set_phase(PH_DELAY, first)
        time.sleep(float(fault_delay[1]))

    nclauses = len(insts)
    for step in range(steps):
        for k, inst in enumerate(insts):
            _run_clause(inst, (run_id, step * nclauses + k), arrays,
                        remaining, rank, nprocs, inboxes, barrier,
                        set_phase, stats, counts, stash)
            last = step == steps - 1 and k == nclauses - 1
            if flags[k] and not last:
                set_phase(PH_BARRIER, first)
                t0 = time.perf_counter()
                barrier.wait(remaining())
                stats.barrier_s += time.perf_counter() - t0
        for a, b in swap:
            arrays[a], arrays[b] = arrays[b], arrays[a]

    set_phase(PH_DONE, first)
    stats.total_s = time.perf_counter() - t_start
    return stats, counts


def _attached(shm_spec, untrack, body):
    """Attach the run's segments, call ``body(arrays)``, always detach."""
    segs, arrays = {}, {}
    try:
        for name, (segname, shape) in shm_spec.items():
            seg = attach_segment(segname, untrack=untrack)
            segs[name] = seg
            arrays[name] = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
        return body(arrays)
    finally:
        arrays.clear()
        for seg in segs.values():
            try:
                seg.close()
            except Exception:
                # a traceback frame can pin a view on the error path;
                # the fd is reclaimed when the pool respawns this worker
                pass


def _execute(inst, run_id, shm_spec, timeout, fault_delay, rank, nprocs,
             inboxes, barrier, set_phase, untrack):
    return _attached(shm_spec, untrack, lambda arrays: _run(
        inst, run_id, arrays, timeout, fault_delay, rank, nprocs,
        inboxes, barrier, set_phase))


def _execute_seq(insts, run_id, shm_spec, steps, swap, flags, timeout,
                 fault_delay, rank, nprocs, inboxes, barrier, set_phase,
                 untrack):
    return _attached(shm_spec, untrack, lambda arrays: _run_seq(
        insts, run_id, arrays, steps, swap, flags, timeout, fault_delay,
        rank, nprocs, inboxes, barrier, set_phase))


def worker_main(rank, nprocs, conn, inboxes, barrier, phase_table,
                untrack=False):
    """Entry point of one pool worker (runs until exit/EOF)."""
    plans: "OrderedDict[int, _Installed]" = OrderedDict()

    def set_phase(idx: int, node: int = -1) -> None:
        phase_table[2 * rank] = idx
        phase_table[2 * rank + 1] = node

    set_phase(PH_IDLE)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "plan":
            set_phase(PH_INSTALL)
            try:
                inst = _Installed(msg[1])
                plans[inst.token] = inst
                while len(plans) > _PLAN_LRU:
                    plans.popitem(last=False)
                conn.send(("planok", inst.token))
            except Exception:
                conn.send(("err", -1, rank, "install", -1,
                           traceback.format_exc()))
            set_phase(PH_IDLE)
        elif kind == "run":
            _, token, run_id, shm_spec, timeout, fault_delay = msg
            try:
                inst = plans.get(token)
                if inst is None:
                    raise RuntimeError(
                        f"program {token} is not installed on worker {rank}")
                stats, counts = _execute(
                    inst, run_id, shm_spec, timeout, fault_delay,
                    rank, nprocs, inboxes, barrier, set_phase, untrack)
                conn.send(("done", run_id, rank, stats, counts))
            except BaseException:
                from .stats import PHASES

                pi = int(phase_table[2 * rank])
                node = int(phase_table[2 * rank + 1])
                phase = PHASES[pi] if 0 <= pi < len(PHASES) else str(pi)
                try:
                    conn.send(("err", run_id, rank, phase, node,
                               traceback.format_exc()))
                except Exception:
                    return
            finally:
                set_phase(PH_IDLE)
        elif kind == "runseq":
            (_, tokens, run_id, shm_spec, steps, swap, flags,
             timeout, fault_delay) = msg
            try:
                insts = []
                for token in tokens:
                    inst = plans.get(token)
                    if inst is None:
                        raise RuntimeError(
                            f"program {token} is not installed on "
                            f"worker {rank}")
                    insts.append(inst)
                stats, counts = _execute_seq(
                    insts, run_id, shm_spec, steps, swap, flags,
                    timeout, fault_delay, rank, nprocs, inboxes,
                    barrier, set_phase, untrack)
                conn.send(("done", run_id, rank, stats, counts))
            except BaseException:
                from .stats import PHASES

                pi = int(phase_table[2 * rank])
                node = int(phase_table[2 * rank + 1])
                phase = PHASES[pi] if 0 <= pi < len(PHASES) else str(pi)
                try:
                    conn.send(("err", run_id, rank, phase, node,
                               traceback.format_exc()))
                except Exception:
                    return
            finally:
                set_phase(PH_IDLE)
        elif kind == "ping":
            conn.send(("pong", rank, os.getpid()))
        elif kind == "exit":
            return
