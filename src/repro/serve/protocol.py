"""The serve wire protocol: newline-delimited JSON requests/responses.

One request per line, one response per line, over a TCP or Unix-domain
stream.  Responses on a connection come back in request order (the
daemon processes a connection's requests sequentially; concurrency
comes from many connections, which is how real clients multiplex).

Request object::

    {"op": <str>, "id": <any, echoed>, "tenant": <str, "default">,
     ...op-specific fields}

Ops and their fields (all compile-shaped ops share the program fields):

``ping``      liveness probe -> ``{"pong": true}``
``compile``   ``program`` (mini-language source), ``arrays`` (list of
              ``NAME=KIND:SIZE[:PARAM]`` decomposition specs), ``params``
              ({name: int}), ``pmax``, ``steps``, ``swap`` (list of
              ``"A:B"``), ``backend``, ``verify`` (bool) -> per-clause
              rules/cache flags plus a program section
``check``     same program fields -> the ``repro check --json`` schema
``run``       program fields plus ``seed`` (server-side deterministic
              inputs, identical to the CLI's) or ``data`` ({name:
              [floats]} explicit inputs), ``shared``, ``strict``,
              ``processes``, ``timeout`` -> final arrays + stats
``stats``     -> server counters + the full cache snapshot
``clear``     admin: drop every cache, dispose worker pools
``shutdown``  admin: acknowledge, then drain and exit gracefully

Response object::

    {"id": <echoed>, "ok": true,  "result": {...}}
    {"id": <echoed>, "ok": false, "error": {"code": <str>, "message": <str>}}

Error codes: ``bad-request`` (malformed JSON/fields/program/specs),
``quota-exceeded`` (per-tenant in-flight cap), ``timeout`` (request
deadline lapsed; an in-flight shared compile keeps running),
``compile-error`` (the program failed to compile), ``run-error``
(strict-mode refusal or a worker crash), ``internal``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ERR_BADREQ",
    "ERR_COMPILE",
    "ERR_INTERNAL",
    "ERR_QUOTA",
    "ERR_RUN",
    "ERR_TIMEOUT",
    "MAX_LINE",
    "OPS",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "request_key",
]

OPS = frozenset({"ping", "compile", "check", "run", "stats", "clear",
                 "shutdown"})

ERR_BADREQ = "bad-request"
ERR_QUOTA = "quota-exceeded"
ERR_TIMEOUT = "timeout"
ERR_COMPILE = "compile-error"
ERR_RUN = "run-error"
ERR_INTERNAL = "internal"

#: per-line ceiling (requests carrying explicit array data included)
MAX_LINE = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A line that is not a valid request object."""


def encode(obj: Dict[str, Any]) -> bytes:
    """One response/request line, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        raise ProtocolError(f"request is not valid JSON: {e}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def ok_response(rid: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": rid, "ok": True, "result": result}


def error_response(rid: Any, code: str, message: str) -> Dict[str, Any]:
    return {"id": rid, "ok": False,
            "error": {"code": code, "message": message}}


def request_key(req: Dict[str, Any]) -> Optional[Tuple]:
    """Canonical coalescing key of a compile-shaped request, or ``None``
    when the request carries fields that defeat coalescing.

    Two requests with the same key would run the identical pipeline on
    the identical inputs — the serve layer collapses them into one
    in-flight compilation (single-flight).  The key is purely textual
    (source + specs + scalars): a false *miss* merely compiles twice,
    and a false *hit* is impossible because the underlying structural
    plan-cache key re-derives identity from the parsed forms anyway.
    """
    params = req.get("params") or {}
    swap = req.get("swap") or []
    arrays = req.get("arrays") or []
    if not isinstance(params, dict) or not isinstance(swap, (list, tuple)) \
            or not isinstance(arrays, (list, tuple)):
        return None
    try:
        return (
            str(req.get("op")),
            str(req.get("program", "")),
            tuple(str(a) for a in arrays),
            tuple(sorted((str(k), int(v)) for k, v in params.items())),
            int(req.get("pmax", 4)),
            int(req.get("steps", 1) or 1),
            tuple(str(s) for s in swap),
            str(req.get("backend", "fused")),
            bool(req.get("verify", False)),
            bool(req.get("strict", False)),
        )
    except (TypeError, ValueError):
        return None
