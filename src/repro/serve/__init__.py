"""``repro serve`` — the long-lived compile-and-run service.

The compile-once pipeline's expensive artifacts (plans, fused/native
kernels, verifier certificates, warm worker pools) are process-global
by design; this package makes them reachable from *many clients* over a
socket instead of dying with each CLI invocation.  Layers:

``protocol``      the newline-delimited JSON request/response schema
``singleflight``  async coalescing of identical in-flight compiles
``service``       :class:`ReproService` — quotas, deadlines, executor
                  offload, the op handlers
``server``        the asyncio daemon (graceful SIGTERM drain)
``client``        blocking :class:`ServeClient` for scripts/benchmarks

See ``docs/serving.md`` for the protocol and a worked transcript.
"""

from .client import ServeClient, ServeError, connect
from .protocol import (
    ERR_BADREQ,
    ERR_COMPILE,
    ERR_INTERNAL,
    ERR_QUOTA,
    ERR_RUN,
    ERR_TIMEOUT,
    OPS,
    ProtocolError,
    request_key,
)
from .server import ReproServer, serve_main
from .service import ReproService, ServiceError
from .singleflight import SingleFlight

__all__ = [
    "ERR_BADREQ",
    "ERR_COMPILE",
    "ERR_INTERNAL",
    "ERR_QUOTA",
    "ERR_RUN",
    "ERR_TIMEOUT",
    "OPS",
    "ProtocolError",
    "ReproServer",
    "ReproService",
    "ServeClient",
    "ServeError",
    "ServiceError",
    "SingleFlight",
    "connect",
    "request_key",
    "serve_main",
]
