"""Async single-flight: N identical concurrent requests, one execution.

The event-loop analogue of the thread-level
:class:`repro.pipeline.cache.CompileFlight`.  The first requester for a
key starts the work as an independent task; every requester (including
the first) awaits that task through ``asyncio.shield``, so:

* a cancelled *client* never cancels the shared in-flight work — the
  remaining waiters (and the warm cache) still get the result;
* a *failing* execution propagates its exception to every current
  waiter but is popped immediately, so the next request retries from
  scratch — failures are never cached as poison.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable

__all__ = ["SingleFlight"]


class SingleFlight:
    """Coalesce concurrent calls by key onto one running task."""

    def __init__(self):
        self._inflight: Dict[Hashable, asyncio.Task] = {}
        self.leaders = 0
        self.coalesced = 0

    def inflight(self) -> int:
        return len(self._inflight)

    async def do(self, key: Hashable,
                 thunk: Callable[[], Awaitable[Any]]) -> Any:
        """Run ``thunk()`` for *key*, or piggyback on the one in flight."""
        task = self._inflight.get(key)
        if task is None:
            self.leaders += 1
            task = asyncio.get_running_loop().create_task(thunk())
            self._inflight[key] = task
            task.add_done_callback(lambda t, k=key: self._done(k, t))
        else:
            self.coalesced += 1
        return await asyncio.shield(task)

    def _done(self, key: Hashable, task: asyncio.Task) -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if not task.cancelled():
            task.exception()  # retrieved: no "never retrieved" warnings
