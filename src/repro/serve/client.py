"""Blocking client for the serve protocol (scripting and benchmarks).

One :class:`ServeClient` holds one connection; requests on it are
serialized (the protocol answers in order).  Concurrency = many clients,
exactly how the benchmark and smoke harnesses drive the daemon.

Addresses: ``"host:port"`` for TCP, anything containing a ``/`` (or
ending in ``.sock``) for a Unix socket path.

    >>> with ServeClient("127.0.0.1:7455") as c:      # doctest: +SKIP
    ...     c.call("ping")
    {'pong': True}
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional, Tuple, Union

from .protocol import MAX_LINE, decode_line, encode

__all__ = ["ServeClient", "ServeError", "connect"]


class ServeError(RuntimeError):
    """An error response from the daemon (``.code`` + message)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def _parse_address(address: Union[str, Tuple[str, int]]):
    if isinstance(address, tuple):
        return ("tcp", address)
    if "/" in address or address.endswith(".sock"):
        return ("unix", address)
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(
            f"bad address {address!r}: expected host:port or a socket path")
    return ("tcp", (host or "127.0.0.1", int(port)))


class ServeClient:
    """One connection speaking newline-delimited JSON."""

    def __init__(self, address: Union[str, Tuple[str, int]],
                 timeout: Optional[float] = 60.0):
        self.kind, self.target = _parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buf = b""
        self._seq = 0

    # -- connection ---------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if self.kind == "unix":
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.settimeout(self.timeout)
        s.connect(self.target)
        self._sock = s
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buf = b""

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests -----------------------------------------------------------

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the raw response object."""
        self.connect()
        if "id" not in req:
            self._seq += 1
            req = {**req, "id": self._seq}
        self._sock.sendall(encode(req))
        return decode_line(self._readline())

    def call(self, op: str, **fields) -> Dict[str, Any]:
        """Send ``{op, **fields}``; return ``result`` or raise
        :class:`ServeError` with the daemon's code and message."""
        resp = self.request({"op": op, **fields})
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ServeError(err.get("code", "unknown"),
                             err.get("message", "unknown error"))
        return resp["result"]

    def _readline(self) -> bytes:
        while b"\n" not in self._buf:
            if len(self._buf) > MAX_LINE:
                raise ServeError("bad-response", "response line too long")
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ServeError("disconnected",
                                 "server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return line


def connect(address, retries: int = 50,
            delay: float = 0.1, timeout: Optional[float] = 60.0
            ) -> ServeClient:
    """Connect with retry — for scripts racing a daemon's startup."""
    last: Optional[Exception] = None
    for _ in range(max(1, retries)):
        try:
            return ServeClient(address, timeout=timeout).connect()
        except OSError as e:
            last = e
            time.sleep(delay)
    raise ConnectionError(
        f"could not connect to repro-serve at {address!r}: {last}")
