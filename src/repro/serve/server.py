"""The asyncio daemon: sockets in, :class:`ReproService` responses out.

``repro serve`` binds a TCP port (``--host``/``--port``) or a Unix
socket (``--unix``) and speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`.  Connections are cheap (one reader task
each); a connection's requests are processed in order, and concurrency
comes from many connections sharing the service's executor and caches.

Lifecycle: the daemon prints one ``repro-serve listening on ...`` line
once bound (scripts parse it to learn an ephemeral port), then serves
until a ``shutdown`` op, SIGTERM, or SIGINT.  All three drain
gracefully: stop accepting, let in-flight requests finish (bounded by
``--drain-timeout``), then dispose the executor, the worker pools and
any shared-memory segments — a SIGTERM'd daemon leaves zero
``/dev/shm`` entries and zero child processes behind.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from .protocol import (
    ERR_BADREQ,
    MAX_LINE,
    ProtocolError,
    decode_line,
    encode,
    error_response,
)
from .service import ReproService

__all__ = ["ReproServer", "serve_main"]


class ReproServer:
    """One listening endpoint wired to one :class:`ReproService`."""

    def __init__(self, service: ReproService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 unix: Optional[str] = None, drain_timeout: float = 10.0,
                 quiet: bool = False):
        self.service = service
        self.host = host
        self.port = port
        self.unix = unix
        self.drain_timeout = drain_timeout
        self.quiet = quiet
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._active = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        # backlog sized for benchmark-style connection storms (hundreds
        # of clients connecting in the same instant)
        if self.unix:
            self._server = await asyncio.start_unix_server(
                self._client, path=self.unix, limit=MAX_LINE, backlog=512)
            self.address = self.unix
        else:
            self._server = await asyncio.start_server(
                self._client, host=self.host, port=self.port,
                limit=MAX_LINE, backlog=512)
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.address = f"{host}:{port}"
        self._install_signals()
        if not self.quiet:
            print(f"repro-serve listening on {self.address}", flush=True)

    def _install_signals(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop or nested loop: rely on shutdown op

    def initiate_shutdown(self) -> None:
        """Idempotent: flip the drain flag and wake ``serve_forever``."""
        self.service.draining = True
        self._stop.set()

    async def serve_forever(self) -> None:
        """Serve until shutdown is initiated, then drain gracefully."""
        await self._stop.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = asyncio.get_running_loop().time() + self.drain_timeout
        while self._active and \
                asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        self.service.close()
        from ..runtime import shutdown_runtime

        shutdown_runtime()
        if not self.quiet:
            print("repro-serve drained and stopped", flush=True)

    # -- per-connection loop ------------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._active += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode(error_response(
                        None, ERR_BADREQ,
                        f"request line exceeds {MAX_LINE} bytes")))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    req = decode_line(line)
                except ProtocolError as e:
                    writer.write(encode(error_response(
                        None, ERR_BADREQ, str(e))))
                    await writer.drain()
                    continue
                response = await self.service.handle(req)
                writer.write(encode(response))
                await writer.drain()
                if isinstance(req, dict) and req.get("op") == "shutdown":
                    self.initiate_shutdown()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; any coalesced compile keeps running
        finally:
            self._active -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


async def _amain(args) -> int:
    service = ReproService(
        workers=args.workers, quota=args.quota,
        request_timeout=args.request_timeout,
        single_flight=not args.no_single_flight)
    server = ReproServer(
        service, host=args.host, port=args.port, unix=args.unix,
        drain_timeout=args.drain_timeout)
    await server.start()
    await server.serve_forever()
    return 0


def serve_main(args) -> int:
    """``repro serve`` entry point (arguments from the CLI parser)."""
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover — signal handler races
        return 0
