"""The compile-and-run service behind ``repro serve``.

:class:`ReproService` is transport-agnostic: it maps one request dict to
one response dict (``handle``), and the server layer feeds it lines from
sockets.  Design of the hot path:

* **Warm caches are the product.**  Every compile routes through the
  ordinary process-global structural caches (plan, kernel, Table I,
  verify, program), so all clients share one warm state — the service
  adds no cache of its own, it *multiplexes* the existing ones.
* **Single-flight compilation.**  N concurrent identical compile/check
  requests collapse onto one pipeline execution via an async
  :class:`~repro.serve.singleflight.SingleFlight` keyed on the request's
  canonical text (and, one layer down, the thread-level
  :data:`~repro.pipeline.cache.compile_flight` guards the structural
  key itself).  Failures are never cached; cancelled clients never
  cancel the shared work.
* **The event loop never computes.**  CPU-heavy work (parsing,
  pipeline passes, verification, executing runs) happens on a bounded
  ``ThreadPoolExecutor``; the loop only routes requests and awaits
  futures.  ``backend="mp"`` runs additionally serialize on one lock —
  the :class:`~repro.runtime.pool.WorkerPool` command protocol is
  parent-side single-threaded by design.
* **Per-tenant quotas and deadlines.**  A tenant exceeding its
  concurrent in-flight cap gets ``quota-exceeded`` immediately; a
  request exceeding the deadline gets ``timeout`` while any shared
  in-flight compile it piggybacked on keeps running for its peers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..backends import UnknownBackendError, validate_backend
from ..cacheinfo import cache_stats, clear_all_caches
from .protocol import (
    ERR_BADREQ,
    ERR_COMPILE,
    ERR_INTERNAL,
    ERR_QUOTA,
    ERR_RUN,
    ERR_TIMEOUT,
    OPS,
    error_response,
    ok_response,
    request_key,
)
from .singleflight import SingleFlight

__all__ = ["ReproService", "ServiceError"]


class ServiceError(Exception):
    """A request-level failure with a protocol error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class TenantState:
    active: int = 0
    total: int = 0
    rejected: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"active": self.active, "total": self.total,
                "rejected": self.rejected}


@dataclass
class _Parsed:
    """One request's decoded program fields."""

    program: Any
    clauses: list
    decomps: Dict[str, object]
    pmax: int
    steps: int
    swap: list
    backend: str
    is_program: bool = field(init=False)

    def __post_init__(self):
        self.is_program = len(self.clauses) > 1 or self.steps > 1 \
            or bool(self.swap)


class ReproService:
    """Shared-cache compile/check/run service (one per daemon)."""

    def __init__(self, *, workers: Optional[int] = None, quota: int = 0,
                 request_timeout: Optional[float] = None,
                 single_flight: bool = True):
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.workers = self.executor._max_workers
        self.quota = int(quota)
        self.request_timeout = request_timeout
        self.single_flight = bool(single_flight)
        self.flight = SingleFlight()
        self.tenants: Dict[str, TenantState] = {}
        self.started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.compiles_executed = 0
        self.checks_executed = 0
        self.runs_executed = 0
        self.draining = False
        self._mp_lock = threading.Lock()
        self._count_lock = threading.Lock()

    def close(self) -> None:
        self.executor.shutdown(wait=True)

    # -- request entry ------------------------------------------------------

    async def handle(self, req: Any) -> Dict[str, Any]:
        """One request dict in, one response dict out.  Never raises for
        request-level failures — they become error responses."""
        rid = req.get("id") if isinstance(req, dict) else None
        tenant_state = None
        try:
            if not isinstance(req, dict):
                raise ServiceError(ERR_BADREQ, "request must be an object")
            op = req.get("op")
            if op not in OPS:
                raise ServiceError(
                    ERR_BADREQ,
                    f"unknown op {op!r}; expected one of {sorted(OPS)}")
            if self.draining and op not in ("ping", "stats"):
                raise ServiceError(ERR_RUN, "server is draining")
            self._bump(self.requests, op)
            tenant = str(req.get("tenant", "default"))
            ts = self.tenants.setdefault(tenant, TenantState())
            ts.total += 1
            if op in ("compile", "check", "run"):
                if self.quota and ts.active >= self.quota:
                    ts.rejected += 1
                    raise ServiceError(
                        ERR_QUOTA,
                        f"tenant {tenant!r} has {ts.active} request(s) in "
                        f"flight (quota {self.quota})")
                ts.active += 1
                tenant_state = ts
            timeout = req.get("timeout_s", self.request_timeout)
            coro = self._dispatch(op, req)
            if timeout:
                result = await asyncio.wait_for(coro, float(timeout))
            else:
                result = await coro
            return ok_response(rid, result)
        except ServiceError as e:
            self._bump(self.errors, e.code)
            return error_response(rid, e.code, str(e))
        except asyncio.TimeoutError:
            self._bump(self.errors, ERR_TIMEOUT)
            return error_response(
                rid, ERR_TIMEOUT,
                "request deadline lapsed (a coalesced in-flight compile "
                "keeps running for its other waiters)")
        except asyncio.CancelledError:
            raise
        except Exception as e:  # noqa: BLE001 — the daemon must not die
            self._bump(self.errors, ERR_INTERNAL)
            return error_response(rid, ERR_INTERNAL,
                                  f"{type(e).__name__}: {e}")
        finally:
            if tenant_state is not None:
                tenant_state.active -= 1

    async def _dispatch(self, op: str, req: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self.stats()
        if op == "clear":
            return {"cleared": True,
                    "caches": await self._offload(clear_all_caches)}
        if op == "shutdown":
            self.draining = True
            return {"draining": True}
        if op == "compile":
            return await self._coalesced(req, self._do_compile)
        if op == "check":
            return await self._coalesced(req, self._do_check)
        return await self._offload(self._do_run, req)

    async def _coalesced(self, req, worker) -> Dict[str, Any]:
        key = request_key(req) if self.single_flight else None
        if key is None:
            return await self._offload(worker, req)
        return await self.flight.do(
            key, lambda: self._offload(worker, req))

    async def _offload(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self.executor, fn, *args)

    def _bump(self, counter: Dict[str, int], key: str) -> None:
        with self._count_lock:
            counter[key] = counter.get(key, 0) + 1

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        from ..runtime import runtime_info

        return {
            "server": {
                "uptime_s": round(time.monotonic() - self.started, 3),
                "workers": self.workers,
                "quota": self.quota,
                "draining": self.draining,
                "requests": dict(self.requests),
                "errors": dict(self.errors),
                "compiles_executed": self.compiles_executed,
                "checks_executed": self.checks_executed,
                "runs_executed": self.runs_executed,
                "singleflight": {
                    "enabled": self.single_flight,
                    "leaders": self.flight.leaders,
                    "coalesced": self.flight.coalesced,
                    "inflight": self.flight.inflight(),
                },
                "tenants": {name: ts.snapshot()
                            for name, ts in self.tenants.items()},
            },
            "caches": cache_stats(),
            "runtime": {str(n): info
                        for n, info in runtime_info().items()},
        }

    # -- executor-side workers ----------------------------------------------

    def _parse(self, req: Dict[str, Any]) -> _Parsed:
        from ..cli import _parse_swap, parse_decomposition
        from ..frontend import translate_source

        source = req.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ServiceError(ERR_BADREQ, "missing program source")
        arrays = req.get("arrays") or []
        params = req.get("params") or {}
        try:
            pmax = int(req.get("pmax", 4))
            steps = max(1, int(req.get("steps", 1) or 1))
            params = {str(k): int(v) for k, v in dict(params).items()}
            arrays = [str(a) for a in arrays]
            swap_items = [str(s) for s in (req.get("swap") or [])]
        except (TypeError, ValueError, AttributeError) as e:
            raise ServiceError(ERR_BADREQ, f"bad request fields: {e}") \
                from None
        backend = str(req.get("backend", "fused"))
        try:
            validate_backend(backend, context="serve")
        except UnknownBackendError as e:
            raise ServiceError(ERR_BADREQ, str(e)) from None
        try:
            swap = _parse_swap(swap_items)
            decomps = dict(parse_decomposition(a, pmax) for a in arrays)
            program = translate_source(source, params)
        except SystemExit as e:
            raise ServiceError(ERR_BADREQ, str(e)) from None
        except (KeyError, ValueError, SyntaxError) as e:
            raise ServiceError(ERR_BADREQ,
                               f"{type(e).__name__}: {e}") from None
        if not decomps:
            raise ServiceError(ERR_BADREQ,
                               "no decompositions: pass \"arrays\"")
        return _Parsed(program=program, clauses=list(program),
                       decomps=decomps, pmax=pmax, steps=steps, swap=swap,
                       backend=backend)

    def _do_compile(self, req: Dict[str, Any]) -> Dict[str, Any]:
        from ..pipeline import compile_plan, compile_program

        p = self._parse(req)
        verify = bool(req.get("verify", False))
        with self._count_lock:
            self.compiles_executed += 1
        clauses_out = []
        try:
            for k, clause in enumerate(p.clauses):
                successor = p.clauses[k + 1] if k + 1 < len(p.clauses) \
                    else None
                ir = compile_plan(clause, p.decomps, successor=successor,
                                  verify=verify)
                entry = {
                    "name": clause.name,
                    "cache_hit": bool(ir.trace.cache_hit),
                    "rules": ir.rules(),
                    "fused": ir.kernels is not None,
                }
                if verify and ir.diagnostics is not None:
                    entry["diagnostics"] = ir.diagnostics.summary()
                clauses_out.append(entry)
            result: Dict[str, Any] = {"clauses": clauses_out,
                                      "backend": p.backend}
            if p.is_program:
                pir = compile_program(p.program, p.decomps, repeat=p.steps,
                                      swap=p.swap, verify=verify)
                result["program"] = {
                    "cache_hit": bool(pir.trace.cache_hit),
                    "steps": len(pir.steps),
                    "repeat": pir.repeat,
                    "barriers_per_step": pir.barriers_per_step(),
                    "pipelined": pir.pipelined,
                    "pipeline_reason": pir.pipeline_reason,
                    "describe": pir.describe(),
                }
            return result
        except ServiceError:
            raise
        except (KeyError, ValueError, NotImplementedError) as e:
            raise ServiceError(ERR_COMPILE,
                               f"{type(e).__name__}: {e}") from None

    def _do_check(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """The ``repro check --json`` schema, served warm."""
        from ..analysis import (
            CODES,
            Diagnostic,
            DiagnosticReport,
            Severity,
            verify_program,
        )
        from ..pipeline import compile_plan, compile_program

        p = self._parse(req)
        strict = bool(req.get("strict", False))
        with self._count_lock:
            self.checks_executed += 1

        def chk001(label, what, e):
            report = DiagnosticReport(clause=label)
            report.add(Diagnostic(
                code="CHK001",
                message=f"{what} failed to compile: {e}",
                severity=Severity.ERROR, hint=CODES["CHK001"]))
            return report.finish()

        reports = []
        for k, clause in enumerate(p.clauses):
            successor = p.clauses[k + 1] if k + 1 < len(p.clauses) else None
            try:
                ir = compile_plan(clause, p.decomps, successor=successor,
                                  verify=True)
                reports.append(ir.diagnostics)
            except (KeyError, ValueError, NotImplementedError) as e:
                reports.append(
                    chk001(clause.name or "<anonymous>", "clause", e))
        verification = None
        program_report = None
        if p.is_program:
            try:
                pir = compile_program(p.program, p.decomps, repeat=p.steps,
                                      swap=p.swap, verify=True)
                verification = verify_program(pir)
                program_report = verification.program
            except (KeyError, ValueError, NotImplementedError) as e:
                program_report = chk001("<program>", "program", e)
        errors = sum(len(r.errors()) for r in reports)
        warnings = sum(len(r.warnings()) for r in reports)
        if program_report is not None:
            errors += len(program_report.errors())
            warnings += len(program_report.warnings())
        ok = errors == 0 and not (strict and warnings)
        cert = verification.certificate if verification is not None else None
        prog_section = None
        if program_report is not None:
            prog_section = {
                "ok": program_report.ok,
                "errors": len(program_report.errors()),
                "warnings": len(program_report.warnings()),
                "diagnostics": [d.as_dict()
                                for d in program_report.diagnostics],
                "certificate": cert.describe() if cert is not None else None,
                "certified_deadlock_free": (cert.ok if cert is not None
                                            else None),
            }
        return {"clauses": [r.summary() for r in reports],
                "program": prog_section,
                "ok": ok, "errors": errors, "warnings": warnings}

    def _do_run(self, req: Dict[str, Any]) -> Dict[str, Any]:
        from ..machine.fused import FusedStrictError
        from ..machine.scheduler import DeadlockError
        from ..runtime import WorkerCrashError

        p = self._parse(req)
        with self._count_lock:
            self.runs_executed += 1
        env0 = self._initial_env(req, p)
        try:
            if p.backend == "mp":
                with self._mp_lock:  # pool protocol is single-threaded
                    return self._execute(req, p, env0)
            return self._execute(req, p, env0)
        except ServiceError:
            raise
        except FusedStrictError as e:
            raise ServiceError(ERR_RUN, f"strict refusal: {e}") from None
        except (WorkerCrashError, DeadlockError) as e:
            raise ServiceError(ERR_RUN, f"{type(e).__name__}: {e}") \
                from None
        except (KeyError, ValueError, NotImplementedError) as e:
            raise ServiceError(ERR_COMPILE,
                               f"{type(e).__name__}: {e}") from None

    def _initial_env(self, req, p: _Parsed) -> Dict[str, np.ndarray]:
        data = req.get("data")
        if data is not None:
            if not isinstance(data, dict):
                raise ServiceError(ERR_BADREQ, "\"data\" must be an object")
            env = {}
            for name, dec in p.decomps.items():
                if name not in data:
                    raise ServiceError(ERR_BADREQ,
                                       f"\"data\" is missing array {name!r}")
                arr = np.asarray(data[name], dtype=np.float64)
                if arr.size != dec.n:
                    raise ServiceError(
                        ERR_BADREQ,
                        f"array {name!r}: got {arr.size} values, "
                        f"decomposition says {dec.n}")
                env[name] = arr
            return env
        # identical to the CLI's deterministic inputs: same seed, same
        # decomposition order => bit-identical arrays
        seed = int(req.get("seed", 0))
        rng = np.random.default_rng(seed)
        return {name: rng.random(dec.n) for name, dec in p.decomps.items()}

    def _execute(self, req, p: _Parsed, env0) -> Dict[str, Any]:
        from ..codegen import compile_clause, run_distributed
        from ..core import copy_env, evaluate_program

        strict = bool(req.get("strict", False))
        processes = req.get("processes")
        timeout = req.get("timeout")
        if bool(req.get("shared", p.is_program)):
            from ..pipeline import (
                compile_program,
                evaluate_program_reference,
                run_program,
            )

            pir = compile_program(p.program, p.decomps, repeat=p.steps,
                                  swap=p.swap)
            ref = evaluate_program_reference(pir, env0)
            machine, barriers = run_program(
                pir, env0, backend=p.backend, strict=strict,
                processes=processes, timeout=timeout)
            names = sorted({c.lhs.name for c in p.clauses}
                           | {n for pr in p.swap for n in pr})
            match = all(np.allclose(machine.env[name], ref[name])
                        for name in names)
            return {
                "mode": "shared",
                "backend": p.backend,
                "arrays": {name: machine.env[name].tolist()
                           for name in names},
                "match_reference": bool(match),
                "barriers": barriers,
                "steps": p.steps,
                "stats": self._machine_stats(machine),
            }
        if p.steps > 1 or p.swap:
            raise ServiceError(ERR_BADREQ,
                               "steps/swap apply to shared program runs")
        ref = evaluate_program(p.program, copy_env(env0))
        env = dict(env0)
        out: Dict[str, Any] = {"mode": "distributed", "backend": p.backend,
                               "clauses": [], "arrays": {}}
        match = True
        stats_total = None
        for clause in p.clauses:
            plan = compile_clause(clause, p.decomps)
            machine = run_distributed(plan, env, backend=p.backend,
                                      strict=strict, processes=processes,
                                      timeout=timeout)
            result = machine.collect(plan.write_name)
            env[plan.write_name] = result
            good = bool(np.allclose(result, ref[plan.write_name]))
            match &= good
            s = self._machine_stats(machine)
            stats_total = s if stats_total is None else {
                k: stats_total[k] + s[k] for k in s}
            out["clauses"].append({"name": clause.name, "match": good})
            out["arrays"][plan.write_name] = result.tolist()
        out["match_reference"] = bool(match)
        out["stats"] = stats_total or {}
        return out

    @staticmethod
    def _machine_stats(machine) -> Dict[str, int]:
        s = machine.stats
        return {
            "messages": int(s.total_messages()),
            "elements_moved": int(s.total_elements_moved()),
            "updates": int(s.total_updates()),
            "membership_tests": int(s.total_tests()),
        }
