"""Compile-once fused node kernels (the ``fused`` backend).

The paper's central claim is that ``Modify``/``Reside`` reduce to
closed-form generation functions *at compile time* — yet the vector
backend still re-derives its membership vectors, placement arithmetic
and local-buffer keys on every run, and walks the clause's expression
tree element-wise through :func:`~repro.machine.vectorize.eval_expr_vec`.
This module pushes that last mile into compile time:

* the clause body (and guard) are lowered **once per plan** to generated
  Python/NumPy source — a single fused ufunc expression line, compiled
  with :func:`compile`/``exec`` and attached to the IR;
* per node, every membership index vector, owning-processor vector and
  local-buffer address is evaluated at kernel-build time and stored as a
  precomputed **flat gather/scatter index array** into the node's local
  ndarray (``np.ravel_multi_index`` for grid layouts), so a run performs
  one fancy-indexed load/store per access instead of per-step dict-keyed
  ``LocalMemory`` arithmetic;
* the interior/boundary split of the `split-interior` pass is baked into
  per-lane-set sub-kernels, so the fused distributed program computes
  its interior while messages are in flight.

Kernels are built by the traced `lower-kernels` pass and memoized in a
:class:`KernelCache` keyed by the same structural keys as the plan cache
(:func:`repro.pipeline.cache.plan_key`): a structurally identical
recompile skips codegen entirely.  ``clear_plan_cache()`` clears this
cache too, so a stale kernel can never outlive its plan.

Plans the lowering cannot specialize — sequential (``•``) clauses,
expressions without a closed-form source rendering, and dynamic or
irregular decompositions whose local layout is not a dense ndarray —
keep the dict-keyed vector path; the reason is recorded as a trace note
(shown by ``compile --explain``) and again at run time when the fused
backend falls back.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.clause import Ordering
from ..core.expr import BinOp, Const, LoopIndex, Ref, UnOp
from .cache import _env_maxsize, plan_key

__all__ = [
    "FusedKernels",
    "SharedNodeKernel",
    "DistNodeKernel",
    "KernelCache",
    "kernel_cache",
    "kernel_cache_info",
    "clear_kernel_cache",
    "build_kernels",
    "attach_kernels",
    "KernelBuildError",
]


class KernelBuildError(ValueError):
    """A plan has no fused-kernel specialization (reason in ``args[0]``)."""


# ---------------------------------------------------------------------------
# fused expression codegen
# ---------------------------------------------------------------------------

def _render(expr, posmap: Dict[int, int]) -> str:
    """ndarray-safe source for an expression tree: loop index *d* is the
    vector ``_i[d]``, read at position *p* is the value vector ``_r[p]``."""
    from ..codegen.exprsrc import _BINOP_PY, _VEC_CALLS

    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, LoopIndex):
        return f"_i[{expr.dim}]"
    if isinstance(expr, Ref):
        return f"_r[{posmap[id(expr)]}]"
    if isinstance(expr, BinOp):
        left = _render(expr.left, posmap)
        right = _render(expr.right, posmap)
        if expr.op in _VEC_CALLS:
            return f"{_VEC_CALLS[expr.op]}({left}, {right})"
        return f"({left} {_BINOP_PY[expr.op]} {right})"
    if isinstance(expr, UnOp):
        inner = _render(expr.operand, posmap)
        if expr.op == "abs":
            return f"_np.absolute({inner})"
        if expr.op == "not":
            return f"_np.logical_not({inner})"
        return f"(-{inner})"
    raise KernelBuildError(
        f"no closed-form source for expression node {type(expr).__name__}"
    )


def _emit_source(clause) -> Tuple[str, Callable, Optional[Callable]]:
    """Generate, compile and return ``(source, rhs_fn, guard_fn)``.

    The body becomes one fused NumPy expression over the node's index
    vectors ``_i`` and pre-gathered read value vectors ``_r`` — no tree
    walk survives into the run."""
    posmap = {id(ref): pos for pos, ref in enumerate(clause.reads())}
    lines = [
        f"# fused kernel for clause {clause.name!r}",
        f"#   {clause!r}",
        "# _i[d]: membership index vector of loop dim d (precomputed)",
        "# _r[k]: value vector of read k (flat gather / received message)",
        "",
        "def _rhs(_i, _r):",
        f"    return {_render(clause.rhs, posmap)}",
    ]
    if clause.guard is not None:
        lines += [
            "",
            "def _guard(_i, _r):",
            f"    return {_render(clause.guard, posmap)}",
        ]
    source = "\n".join(lines) + "\n"
    ns: Dict[str, object] = {"_np": np}
    exec(compile(source, "<fused-kernel>", "exec"), ns)  # noqa: S102
    return source, ns["_rhs"], ns.get("_guard")


# ---------------------------------------------------------------------------
# per-node precomputation
# ---------------------------------------------------------------------------

@dataclass
class SharedNodeKernel:
    """One node's shared-memory kernel: everything but the data."""

    n: int
    idx: tuple                      # per-loop-dim membership index vectors
    read_keys: tuple                # per read: (name, global index key)
    write_key_vecs: tuple           # index arrays into the global target


@dataclass
class _DistSend:
    pos: int
    name: str
    count: int
    peers: tuple                    # ((q, flat gather into local buf), ...)


@dataclass
class _DistRead:
    pos: int
    name: str
    replicated: bool
    rep_gather: Optional[np.ndarray] = None   # replicated: flat full-copy key
    local_pos: Optional[np.ndarray] = None    # lanes resident locally
    local_gather: Optional[np.ndarray] = None  # flat local-buffer indices
    sources: tuple = ()             # ((src, lane-fill positions), ...)


@dataclass
class DistNodeKernel:
    """One node's distributed kernel: send plan, gather plan, lane split."""

    n: int
    idx: tuple
    sends: tuple
    reads: tuple
    interior: np.ndarray            # lane positions computed pre-drain
    boundary: np.ndarray
    idx_interior: tuple             # idx restricted to each lane set
    idx_boundary: tuple
    scatter_interior: np.ndarray    # flat store keys into the write buffer
    scatter_boundary: np.ndarray


@dataclass
class FusedKernels:
    """Everything ``backend="fused"`` needs, built once per plan."""

    source: str
    rhs: Callable
    guard: Optional[Callable]
    nreads: int
    write_name: str
    shared: Optional[List[SharedNodeKernel]] = None
    shared_note: Optional[str] = None
    dist: Optional[List[DistNodeKernel]] = None
    dist_note: Optional[str] = None
    build_notes: List[str] = field(default_factory=list)
    #: native (njit) tier riding on the same cache entry — built lazily
    #: by :func:`repro.pipeline.native.ensure_native`; a build failure is
    #: cached in ``native_note`` so the fallback reason is stable.
    native: Optional[object] = None
    native_note: Optional[str] = None

    def describe(self) -> str:
        parts = []
        for label, nodes, note in (("shared", self.shared, self.shared_note),
                                   ("distributed", self.dist, self.dist_note)):
            if nodes is not None:
                parts.append(f"{label}: {len(nodes)} node kernels")
            else:
                parts.append(f"{label}: dict-memory fallback ({note})")
        return "; ".join(parts)


def _flat_local(acc, idx_vecs, p: int) -> np.ndarray:
    """Flat index into node *p*'s local ndarray for every member lane.

    1-D layouts are flat already; grid layouts ravel through the node's
    dense local shape.  Anything else has no static dense layout and
    raises :class:`KernelBuildError` (the dict-memory fallback)."""
    from ..decomp.multidim import GridDecomposition
    from ..machine.vectorize import _local_key

    key = _local_key(acc, idx_vecs)
    if not isinstance(key, tuple):
        return np.asarray(key, dtype=np.int64)
    if len(key) == 1:
        return np.asarray(key[0], dtype=np.int64)
    dec = acc.dec
    if isinstance(dec, GridDecomposition):
        shape = dec.local_shape(p)
        if any(s <= 0 for s in shape):
            return np.zeros(0, dtype=np.int64)
        return np.ravel_multi_index(
            tuple(np.asarray(k, dtype=np.int64) for k in key), shape)
    raise KernelBuildError(
        f"{acc.name!r}: irregular local layout under {type(dec).__name__} "
        "has no flat ndarray form"
    )


def _build_shared(ir) -> List[SharedNodeKernel]:
    from ..machine.vectorize import _member_vecs, apply_ifunc

    nodes = []
    for p in range(ir.pmax):
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        read_keys = []
        for acc in ir.reads:
            if not acc.funcs:
                raise KernelBuildError(
                    f"read {acc.name!r} has no separable access functions")
            ai = tuple(apply_ifunc(f, idx_vecs[d])
                       for d, f in zip(acc.dims, acc.funcs))
            read_keys.append((acc.name, ai if len(ai) > 1 else ai[0]))
        w_ai = tuple(apply_ifunc(f, idx_vecs[d])
                     for d, f in zip(ir.write.dims, ir.write.funcs))
        nodes.append(SharedNodeKernel(
            n=n, idx=tuple(idx_vecs), read_keys=tuple(read_keys),
            write_key_vecs=w_ai,
        ))
    return nodes


def _build_dist(ir) -> List[DistNodeKernel]:
    from ..machine.vectorize import (
        _interior_mask,
        _member_vecs,
        _proc_linear,
        apply_ifunc,
    )

    if ir.write.replicated:
        raise KernelBuildError("replicated write (per-copy broadcast)")
    for acc in ir.reads:
        if not acc.placed:
            raise KernelBuildError(
                f"read {acc.name!r} carries no decomposition")
        if acc.replicated and len(acc.funcs) != 1:
            raise KernelBuildError(
                f"replicated read {acc.name!r} is not rank-1")

    nodes = []
    for p in range(ir.pmax):
        # -- send plan ------------------------------------------------------
        sends = []
        for acc in ir.reads:
            if acc.replicated:
                continue
            r_idx = _member_vecs(ir, acc, p)
            cnt = int(r_idx[0].size)
            if cnt == 0:
                continue
            dest = _proc_linear(ir.write, r_idx)
            gather = _flat_local(acc, r_idx, p)
            peers = tuple(
                (int(q), gather[dest == q])
                for q in np.unique(dest) if int(q) != p
            )
            sends.append(_DistSend(pos=acc.pos, name=acc.name, count=cnt,
                                   peers=peers))

        # -- gather plan ----------------------------------------------------
        idx_vecs = _member_vecs(ir, ir.write, p)
        n = int(idx_vecs[0].size)
        reads = []
        for acc in ir.reads:
            if acc.replicated:
                ai = apply_ifunc(acc.funcs[0], idx_vecs[acc.dims[0]]) \
                    if n else np.zeros(0, dtype=np.int64)
                reads.append(_DistRead(pos=acc.pos, name=acc.name,
                                       replicated=True, rep_gather=ai))
                continue
            if n == 0:
                reads.append(_DistRead(
                    pos=acc.pos, name=acc.name, replicated=False,
                    local_pos=np.zeros(0, dtype=np.int64),
                    local_gather=np.zeros(0, dtype=np.int64)))
                continue
            src = _proc_linear(acc, idx_vecs)
            local = src == p
            local_pos = np.nonzero(local)[0]
            sub = [v[local] for v in idx_vecs]
            local_gather = _flat_local(acc, sub, p)
            sources = tuple(
                (int(s), np.nonzero(src == s)[0])
                for s in np.unique(src[~local])
            )
            reads.append(_DistRead(pos=acc.pos, name=acc.name,
                                   replicated=False, local_pos=local_pos,
                                   local_gather=local_gather,
                                   sources=sources))

        # -- commit plan: lane split + flat scatter --------------------------
        if n:
            scatter = _flat_local(ir.write, idx_vecs, p)
            interior_mask = _interior_mask(ir, p, idx_vecs)
            interior = np.nonzero(interior_mask)[0]
            boundary = np.nonzero(~interior_mask)[0]
        else:
            scatter = np.zeros(0, dtype=np.int64)
            interior = boundary = np.zeros(0, dtype=np.int64)
        nodes.append(DistNodeKernel(
            n=n,
            idx=tuple(idx_vecs),
            sends=tuple(sends),
            reads=tuple(reads),
            interior=interior,
            boundary=boundary,
            idx_interior=tuple(v[interior] for v in idx_vecs),
            idx_boundary=tuple(v[boundary] for v in idx_vecs),
            scatter_interior=scatter[interior],
            scatter_boundary=scatter[boundary],
        ))
    return nodes


def build_kernels(ir) -> FusedKernels:
    """Lower one compiled Plan IR to its fused kernels.

    Raises :class:`KernelBuildError` when *no* fused form exists at all
    (sequential clause, unrenderable expression); partial availability —
    e.g. shared kernels without distributed ones — is recorded per
    flavor with the fallback reason."""
    clause = ir.clause
    if clause.ordering is not Ordering.PAR:
        raise KernelBuildError(
            "sequential (•) clause is a serial chain; scalar path kept")
    if ir.write is None:
        raise KernelBuildError("plan carries no substituted write access")
    source, rhs, guard = _emit_source(clause)
    kernels = FusedKernels(
        source=source, rhs=rhs, guard=guard,
        nreads=len(ir.reads), write_name=ir.write.name,
    )
    try:
        kernels.shared = _build_shared(ir)
    except KernelBuildError as e:
        kernels.shared_note = str(e)
    except Exception as e:  # enumerator/placement surprises: never fatal
        kernels.shared_note = f"{type(e).__name__}: {e}"
    try:
        kernels.dist = _build_dist(ir)
    except KernelBuildError as e:
        kernels.dist_note = str(e)
    except Exception as e:
        kernels.dist_note = f"{type(e).__name__}: {e}"
    if kernels.shared is None and kernels.dist is None:
        raise KernelBuildError(
            f"shared: {kernels.shared_note}; distributed: {kernels.dist_note}"
        )
    return kernels


# ---------------------------------------------------------------------------
# the kernel cache
# ---------------------------------------------------------------------------

_DEFAULT_MAXSIZE = 256


def _dispose_native_tier(kernels: FusedKernels) -> None:
    """Drop the native (njit) artifacts riding on an evicted entry so
    the dispatcher and its compiled machine code can be collected."""
    from .native import dispose_native  # local: kernels <- native cycle

    dispose_native(kernels)


def _approx_nbytes(obj, _depth: int = 0) -> int:
    """Approximate resident bytes of a kernel entry: ndarray buffers plus
    generated source text, found by a bounded structural walk.  This is
    an *accounting* estimate (the index arrays dominate by orders of
    magnitude), not ``sys.getsizeof`` truth."""
    if _depth > 8 or obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_approx_nbytes(x, _depth + 1) for x in obj)
    if isinstance(obj, dict):
        return sum(_approx_nbytes(x, _depth + 1) for x in obj.values())
    if hasattr(obj, "__dataclass_fields__"):
        return sum(_approx_nbytes(getattr(obj, name), _depth + 1)
                   for name in obj.__dataclass_fields__)
    return 0


#: default resident-byte budget for the kernel cache (256 MiB);
#: override with ``REPRO_CACHE_BYTES`` (read at construction time)
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _env_max_bytes(default: int) -> int:
    raw = os.environ.get("REPRO_CACHE_BYTES")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class KernelCache:
    """Thread-safe, size-accounted LRU cache of :class:`FusedKernels`,
    keyed by the plan cache's structural keys — warm recompiles skip
    codegen entirely.  Eviction fires on *either* bound: entry count
    (``maxsize`` / ``REPRO_CACHE_SIZE``) or resident bytes
    (``max_bytes`` / ``REPRO_CACHE_BYTES``, counting the precomputed
    gather/scatter index arrays and generated source)."""

    def __init__(self, maxsize: Optional[int] = None,
                 max_bytes: Optional[int] = None):
        self.maxsize = (_env_maxsize(_DEFAULT_MAXSIZE)
                        if maxsize is None else maxsize)
        self.max_bytes = (_env_max_bytes(_DEFAULT_MAX_BYTES)
                          if max_bytes is None else max_bytes)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        self._entries: "OrderedDict[tuple, FusedKernels]" = OrderedDict()
        self._sizes: Dict[tuple, int] = {}
        self._lock = threading.Lock()

    def lookup(self, key: tuple) -> Optional[FusedKernels]:
        with self._lock:
            k = self._entries.get(key)
            if k is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return k

    def store(self, key: tuple, kernels: FusedKernels) -> None:
        nbytes = _approx_nbytes(kernels)  # sized outside the lock
        dropped = []
        with self._lock:
            old = self._sizes.pop(key, None)
            if old is not None:
                self.bytes -= old
            self._entries[key] = kernels
            self._entries.move_to_end(key)
            self._sizes[key] = nbytes
            self.bytes += nbytes
            while len(self._entries) > 1 and (
                    len(self._entries) > self.maxsize
                    or self.bytes > self.max_bytes):
                k, evicted = self._entries.popitem(last=False)
                self.bytes -= self._sizes.pop(k, 0)
                self.evictions += 1
                dropped.append(evicted)
        for evicted in dropped:
            _dispose_native_tier(evicted)

    def clear(self) -> None:
        with self._lock:
            dropped = list(self._entries.values())
            self._entries.clear()
            self._sizes.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes = 0
        for evicted in dropped:
            _dispose_native_tier(evicted)

    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "bytes": self.bytes,
                "max_bytes": self.max_bytes,
                "enabled": self.enabled,
            }


#: process-global kernel cache (cleared alongside the plan cache)
kernel_cache = KernelCache()


def kernel_cache_info() -> Dict[str, object]:
    return kernel_cache.info()


def clear_kernel_cache() -> None:
    kernel_cache.clear()


def _kernel_key(ir) -> Optional[tuple]:
    key = plan_key(ir.clause, ir.decomps, successor=ir.successor,
                   require_read_decomps=ir.require_read_decomps)
    if key is None:
        return None
    try:
        hash(key)
    except TypeError:
        return None
    return ("kern",) + key


def attach_kernels(ir) -> List[str]:
    """The `lower-kernels` pass body: build (or fetch) fused kernels and
    attach them to ``ir.kernels``.  Returns the trace notes."""
    key = _kernel_key(ir) if kernel_cache.enabled else None
    if key is not None:
        cached = kernel_cache.lookup(key)
        if cached is not None:
            ir.kernels = cached
            return [f"kernel-cache hit: {cached.describe()}"]
    try:
        kernels = build_kernels(ir)
    except KernelBuildError as e:
        ir.kernels = None
        return [f"no fused kernel: {e}"]
    ir.kernels = kernels
    if key is not None:
        kernel_cache.store(key, kernels)
    notes = [f"compiled fused kernels: {kernels.describe()}"]
    for label, note in (("shared", kernels.shared_note),
                        ("distributed", kernels.dist_note)):
        if note:
            notes.append(f"{label} fallback → dict-keyed vector path: "
                         f"{note}")
    return notes
