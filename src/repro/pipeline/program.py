"""Whole-program compilation: the Program IR and its inter-clause passes.

The paper compiles one clause at a time; its motivating workloads
(iterated stencils, multi-statement SPMD programs) are clause
*sequences*.  This module lifts the per-clause Plan IR to a
:class:`ProgramIR`: every clause is compiled through the ordinary pass
pipeline (plan-cached as usual), then three traced inter-clause passes
run over the sequence:

``compile-clauses``
    One :class:`ProgramStep` per clause.  1-D clauses compile with their
    successor so the `eliminate-barriers` proof lands in the per-clause
    trace; d-dimensional clauses route through the relaxed nd path.

``elide-redistribution``
    For every boundary between consecutive clauses (and, for
    ``repeat > 1``, the wrap-around step boundary), compare the
    producer's and consumer's decompositions structurally
    (``cache_key()``).  Agreement means the data is already placed where
    the consumer expects it — no re-placement, and for the mp backend no
    per-clause shared-memory session.

``fuse-clauses``
    Merge adjacent clauses into one fused phase when the barrier between
    them was proven removable (no cross-processor flow/anti/output
    dependence and no intra-clause overlap — the Bernstein conditions
    checked by ``barrier_removable``).  The certifying RACE-analysis
    verdict of both clauses is recorded on the pass trace.

``pipeline-time-loop``
    A ``repeat(steps)`` program compiles its step once.  When every
    boundary elides and the ``swap`` buffer pairs are
    placement-compatible, the whole time loop is *pipelined*: fused/mp
    kernels and the WorkerPool stay hot and buffers swap by name
    (zero-copy env-entry exchange) instead of re-placing memory each
    iteration.

``run_program`` executes the IR on the shared-memory model under the
full backend registry (``overlap`` degrades to ``vector`` with a trace
note, exactly like single-clause shared runs).  Compiled programs are
memoized in a structural-key LRU (:class:`ProgramCache`) alongside the
plan/kernel/Table I caches.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.clause import Clause, Ordering
from ..decomp.multidim import GridDecomposition
from ..machine.shared import SharedMachine
from . import compile_plan
from .cache import _clone_hit, _env_maxsize, plan_key
from .trace import PassRecord, PipelineTrace

__all__ = [
    "ProgramStep",
    "ProgramIR",
    "ProgramCache",
    "program_cache",
    "program_key",
    "compile_program",
    "run_program",
    "evaluate_program_reference",
    "program_cache_info",
    "clear_program_cache",
]

_DEFAULT_MAXSIZE = 64


# ---------------------------------------------------------------------------
# the IR
# ---------------------------------------------------------------------------

@dataclass
class ProgramStep:
    """One compiled clause inside a program."""

    index: int
    clause: Clause
    decomps: Dict[str, object]
    ir: object                      # PlanIR
    nd: bool = False
    #: is a barrier executed after this clause? (False = fused with next)
    barrier_after: bool = True
    #: provisional: the eliminate-barriers proof said the barrier between
    #: this clause and its successor is removable
    fusable_next: bool = False
    _plan: object = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        return self.clause.name or f"clause{self.index}"

    def plan(self):
        """The legacy plan projection the machine templates consume."""
        if self._plan is None:
            self._plan = (self.ir.to_nd_plan() if self.nd
                          else self.ir.to_spmd_plan())
        return self._plan


@dataclass
class ProgramIR:
    """A compiled clause sequence plus the inter-clause pass facts."""

    steps: List[ProgramStep]
    repeat: int = 1
    #: ((a, b), ...) — env entries exchanged after every iteration
    swap: Tuple[Tuple[str, str], ...] = ()
    pmax: int = 0
    #: fusion groups: lists of step indices, each group one fused phase
    groups: List[List[int]] = field(default_factory=list)
    #: (boundary label, array) pairs whose re-placement was elided
    elided: List[Tuple[object, str]] = field(default_factory=list)
    #: (boundary label, array, reason) — placement changes that survive
    redistributions: List[Tuple[object, str, str]] = field(
        default_factory=list)
    #: repeat > 1 and the whole step is re-placement free: mp may keep
    #: one shared-memory session and the worker pool hot across steps
    pipelined: bool = False
    pipeline_reason: str = ""
    trace: PipelineTrace = field(default_factory=PipelineTrace)
    cache_key: Optional[tuple] = None

    @property
    def clauses(self) -> List[Clause]:
        return [st.clause for st in self.steps]

    def barrier_flags(self) -> List[bool]:
        return [st.barrier_after for st in self.steps]

    def barriers_per_step(self) -> int:
        """Kept barriers one iteration executes (• singleton groups run
        serially and never barrier — legacy program semantics)."""
        count = 0
        for group in self.groups:
            if len(group) == 1 and \
                    self.steps[group[0]].clause.ordering is Ordering.SEQ:
                continue
            count += 1
        return count

    def describe(self) -> str:
        lines = [f"program: {len(self.steps)} clause(s), "
                 f"{len(self.groups)} phase(s), repeat={self.repeat}"]
        for st in self.steps:
            tail = "fused-with-next" if not st.barrier_after else "barrier"
            lines.append(f"  {st.index}: {st.name} "
                         f"[{'nd' if st.nd else '1-D'}] -> {tail}")
        lines.append(f"  elided redistributions: {len(self.elided)}; "
                     f"kept: {len(self.redistributions)}")
        if self.repeat > 1:
            state = "pipelined" if self.pipelined else \
                f"not pipelined ({self.pipeline_reason})"
            lines.append(f"  time loop: {state}; swap={list(self.swap)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# structural keys + program cache
# ---------------------------------------------------------------------------

def program_key(
    clauses: Sequence[Clause],
    decomps_list: Sequence[Dict[str, object]],
    *,
    repeat: int,
    swap: Tuple[Tuple[str, str], ...],
    eliminate_barriers: bool,
    fuse: bool,
    elide: bool,
) -> Optional[tuple]:
    """Structural key of one ``compile_program`` invocation (``None``
    when any clause opts out of plan caching)."""
    keys = []
    for clause, decs in zip(clauses, decomps_list):
        k = plan_key(clause, decs)
        if k is None:
            return None
        keys.append(k)
    return ("prog", tuple(keys), int(repeat), tuple(swap),
            bool(eliminate_barriers), bool(fuse), bool(elide))


class ProgramCache:
    """Thread-safe LRU of compiled :class:`ProgramIR` (structural keys,
    eviction-counted, ``REPRO_CACHE_SIZE`` respected)."""

    def __init__(self, maxsize: Optional[int] = None):
        self.maxsize = (_env_maxsize(_DEFAULT_MAXSIZE)
                        if maxsize is None else maxsize)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, ProgramIR]" = OrderedDict()
        self._lock = threading.Lock()

    def key_for(self, clauses, decomps_list, **opts) -> Optional[tuple]:
        if not self.enabled:
            return None
        key = program_key(clauses, decomps_list, **opts)
        if key is None:
            return None
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def lookup(self, key, clauses, decomps_list) -> Optional[ProgramIR]:
        with self._lock:
            pir = self._entries.get(key)
            if pir is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return _clone_program_hit(pir, key, clauses)

    def store(self, key, pir: ProgramIR) -> None:
        with self._lock:
            self._entries[key] = pir
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "enabled": self.enabled,
            }


def _clone_program_hit(pir: ProgramIR, key, clauses) -> ProgramIR:
    """Clone a cached program with a fresh hit-marked trace, re-anchoring
    every step's Plan IR onto the caller's clause objects (executors key
    pre-fetched values by ``Ref`` identity — see the plan cache)."""
    trace = PipelineTrace(
        label=pir.trace.label,
        records=list(pir.trace.records),
        cache_hit=True,
        cache_key=key,
    )
    steps = []
    for st, clause in zip(pir.steps, clauses):
        ir = _clone_hit(st.ir, st.ir.trace.cache_key, clause,
                        st.ir.decomps, st.ir.successor)
        steps.append(dataclasses.replace(st, clause=clause, ir=ir,
                                         _plan=None))
    return dataclasses.replace(pir, steps=steps, trace=trace)


#: the process-global program cache used by ``compile_program``
program_cache = ProgramCache()


def program_cache_info() -> Dict[str, object]:
    return program_cache.info()


def clear_program_cache() -> None:
    program_cache.clear()


# ---------------------------------------------------------------------------
# the inter-clause passes
# ---------------------------------------------------------------------------

def _is_nd(clause: Clause, decomps: Dict[str, object]) -> bool:
    if clause.domain.dim > 1:
        return True
    return any(isinstance(decomps.get(name), GridDecomposition)
               for name in clause.array_names())


def _dec_key(dec) -> Optional[tuple]:
    if dec is None:
        return ("unplaced",)
    key_of = getattr(dec, "cache_key", None)
    return key_of() if callable(key_of) else None


def _placements_agree(d1, d2) -> bool:
    if d1 is d2:
        return True
    k1, k2 = _dec_key(d1), _dec_key(d2)
    return k1 is not None and k1 == k2


def _compatible_for_barrier_analysis(s1_clause, d1, s2_clause, d2) -> bool:
    """The 1-D barrier proof assumes one placement per array; per-clause
    decomposition dicts must agree structurally on every shared array."""
    for name in set(s1_clause.array_names()) | set(s2_clause.array_names()):
        a, b = d1.get(name), d2.get(name)
        if a is None or b is None:
            if a is not b:
                return False
            continue
        if not _placements_agree(a, b):
            return False
    return True


def _timed(trace: PipelineTrace, name: str, paper: str) -> PassRecord:
    rec = PassRecord(name=name, paper=paper)
    rec._t0 = time.perf_counter()
    trace.add(rec)
    return rec


def _done(rec: PassRecord) -> None:
    rec.wall_ms = (time.perf_counter() - rec._t0) * 1e3
    del rec._t0


def _pass_compile_clauses(pir, clauses, decomps_list, eliminate_barriers,
                          verify) -> None:
    rec = _timed(pir.trace, "compile-clauses", "§2.6-2.10 per clause")
    for k, (clause, decs) in enumerate(zip(clauses, decomps_list)):
        nd = _is_nd(clause, decs)
        successor = None
        merged = decs
        if eliminate_barriers and not nd and k + 1 < len(clauses):
            nxt, ndecs = clauses[k + 1], decomps_list[k + 1]
            if (not _is_nd(nxt, ndecs)
                    and _compatible_for_barrier_analysis(
                        clause, decs, nxt, ndecs)):
                successor = nxt
                merged = {**ndecs, **decs}
        ir = compile_plan(clause, merged, successor=successor,
                          require_read_decomps=not nd, verify=verify)
        step = ProgramStep(index=k, clause=clause, decomps=merged, ir=ir,
                           nd=nd,
                           fusable_next=(successor is not None
                                         and not ir.barrier_needed))
        pir.steps.append(step)
        rec.notes.append(
            f"clause {k} ({step.name}): {'nd' if nd else '1-D'}"
            + (" [plan-cache hit]" if ir.trace.cache_hit else "")
        )
    pir.pmax = max(st.ir.pmax for st in pir.steps)
    rec.rewrites = len(pir.steps)
    _done(rec)


def _boundary_elision(pir, rec, label, producer: ProgramStep,
                      consumer: ProgramStep, rename=None) -> None:
    """Compare placements across one boundary; *rename* maps a consumer
    array name back to the producer-side buffer holding its data (the
    wrap-around step boundary after a ``swap``)."""
    for name in sorted(set(consumer.clause.array_names())):
        src = rename.get(name, name) if rename else name
        if src not in producer.decomps:
            continue
        d1, d2 = producer.decomps[src], consumer.decomps.get(name)
        via = f" (via swap {src}->{name})" if src != name else ""
        if _placements_agree(d1, d2):
            pir.elided.append((label, name))
            rec.notes.append(
                f"boundary {label}: redistribution of {name!r} elided"
                f"{via} — producer/consumer placements agree ({d1!r})")
        else:
            reason = f"{d1!r} -> {d2!r}"
            pir.redistributions.append((label, name, reason))
            rec.notes.append(
                f"boundary {label}: {name!r} changes placement"
                f"{via} ({reason}); re-placed at the barrier")


def _pass_elide_redistribution(pir, elide: bool) -> None:
    rec = _timed(pir.trace, "elide-redistribution",
                 "Table I placement agreement across clause boundaries")
    if not elide:
        rec.notes.append("disabled (elide=False): every boundary re-places")
        for k in range(len(pir.steps) - 1):
            pir.redistributions.append(
                (f"{k}->{k + 1}", "*", "elision disabled"))
        _done(rec)
        return
    for k in range(len(pir.steps) - 1):
        _boundary_elision(pir, rec, f"{k}->{k + 1}",
                          pir.steps[k], pir.steps[k + 1])
    if pir.repeat > 1:
        rename = {}
        for a, b in pir.swap:
            rename[a], rename[b] = b, a
        _boundary_elision(pir, rec, "step", pir.steps[-1], pir.steps[0],
                          rename=rename)
    rec.rewrites = len(pir.elided)
    if not rec.notes:
        rec.notes.append("no inter-clause boundaries")
    _done(rec)


def _race_verdict(step: ProgramStep) -> str:
    ir = step.ir
    if ir.diagnostics is None:
        from ..analysis import verify_ir

        ir.diagnostics = verify_ir(ir)
    races = sorted({d.code for d in ir.diagnostics.diagnostics
                    if d.code.startswith("RACE")})
    if races:
        return f"{step.name}: {', '.join(races)}"
    return f"{step.name}: RACE-clean (no RACE* findings)"


def _pass_fuse_clauses(pir, fuse: bool) -> None:
    rec = _timed(pir.trace, "fuse-clauses",
                 "§2.9 fn.1 barrier elimination / Bernstein conditions")
    for k in range(len(pir.steps) - 1):
        st, nxt = pir.steps[k], pir.steps[k + 1]
        if not fuse:
            rec.notes.append(f"boundary {k}->{k + 1}: barrier kept "
                             "(fusion disabled)")
            continue
        if st.fusable_next:
            st.barrier_after = False
            rec.rewrites += 1
            rec.notes.append(
                f"boundary {k}->{k + 1}: fused {st.name}+{nxt.name} — no "
                "cross-processor flow/anti/output dependence and no "
                "intra-clause overlap (eliminate-barriers proof); "
                f"RACE verdict: {_race_verdict(st)}; {_race_verdict(nxt)}")
        else:
            why = ("sequential (•) clause" if (
                st.clause.ordering is Ordering.SEQ
                or nxt.clause.ordering is Ordering.SEQ)
                else "nd clause (barrier analysis is 1-D)" if (st.nd or nxt.nd)
                else "cross-processor dependence or overlap")
            rec.notes.append(
                f"boundary {k}->{k + 1}: barrier kept ({why})")
    # group clauses into fused runs ending at each kept barrier
    current: List[int] = []
    for st in pir.steps:
        current.append(st.index)
        if st.barrier_after:
            pir.groups.append(current)
            current = []
    if current:
        pir.groups.append(current)
    _done(rec)


def _pass_pipeline_time_loop(pir) -> None:
    rec = _timed(pir.trace, "pipeline-time-loop",
                 "compile the step once; swap buffers, keep kernels hot")
    if pir.repeat <= 1:
        pir.pipeline_reason = "repeat=1 (nothing to pipeline)"
        rec.notes.append(pir.pipeline_reason)
        _done(rec)
        return
    union: Dict[str, object] = {}
    for st in pir.steps:
        for name, dec in st.decomps.items():
            union.setdefault(name, dec)
    reasons = []
    for a, b in pir.swap:
        da, db = union.get(a), union.get(b)
        if da is None or db is None:
            reasons.append(f"swap pair ({a},{b}): unknown array")
            continue
        if getattr(da, "n", None) != getattr(db, "n", None):
            reasons.append(f"swap pair ({a},{b}): sizes differ")
        elif not _placements_agree(da, db):
            reasons.append(
                f"swap pair ({a},{b}): placements differ ({da!r} vs {db!r})")
        else:
            rec.notes.append(
                f"swap ({a}<->{b}): placement-compatible ({da!r}) — "
                "buffers exchange by name, zero-copy, no re-placement")
    if pir.redistributions:
        label, name, _ = pir.redistributions[0]
        reasons.append(
            f"{len(pir.redistributions)} redistribution boundary(ies) "
            f"survive elision (first: {name!r} at {label})")
    pir.pipelined = not reasons
    pir.pipeline_reason = "; ".join(reasons)
    if pir.pipelined:
        rec.rewrites = 1
        rec.notes.append(
            f"repeat({pir.repeat}): step compiled once; fused/mp kernels "
            "and the worker pool stay hot; buffers swap after every "
            "iteration (including the last)")
    else:
        rec.notes.append(f"not pipelined: {pir.pipeline_reason} — "
                         "the time loop re-drives clauses per step")
    _done(rec)


# ---------------------------------------------------------------------------
# compile_program
# ---------------------------------------------------------------------------

def _normalize_decomps(decomps, nclauses: int) -> List[Dict[str, object]]:
    if isinstance(decomps, dict):
        return [decomps] * nclauses
    out = [dict(d) for d in decomps]
    if len(out) != nclauses:
        raise ValueError(
            f"per-clause decomposition list has {len(out)} entries "
            f"for {nclauses} clauses")
    return out


def compile_program(
    program,
    decomps,
    *,
    repeat: int = 1,
    swap: Sequence[Tuple[str, str]] = (),
    eliminate_barriers: bool = True,
    fuse: bool = True,
    elide: bool = True,
    verify: bool = False,
) -> ProgramIR:
    """Compile a clause sequence (a :class:`~repro.core.clause.Program`
    or any clause iterable) into a :class:`ProgramIR`.

    *decomps* is either one dict (every clause placed identically — the
    common case, every boundary elides) or a per-clause sequence of
    dicts (placement may change between clauses: a *redistribution
    boundary*).  ``repeat``/``swap`` express a time loop: the step runs
    ``repeat`` times and the named env-entry pairs are exchanged after
    every iteration (double buffering without copies).

    Compiled programs are memoized on a structural key; a hit returns a
    clone whose program trace carries ``cache_hit=True`` and whose
    per-clause IRs are re-anchored onto the caller's clause objects.
    """
    clauses = list(program)
    if not clauses:
        raise ValueError("cannot compile an empty program")
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    swap = tuple((str(a), str(b)) for a, b in swap)
    seen = set()
    for pair in swap:
        for name in pair:
            if name in seen:
                raise ValueError(f"array {name!r} appears in two swap pairs")
            seen.add(name)
    decomps_list = _normalize_decomps(decomps, len(clauses))
    opts = dict(repeat=repeat, swap=swap,
                eliminate_barriers=eliminate_barriers, fuse=fuse,
                elide=elide)
    key = None
    if not verify:
        key = program_cache.key_for(clauses, decomps_list, **opts)
        if key is not None:
            hit = program_cache.lookup(key, clauses, decomps_list)
            if hit is not None:
                return hit
    label = f"program[{len(clauses)}]"
    if repeat > 1:
        label += f" repeat({repeat})"
    pir = ProgramIR(steps=[], repeat=repeat, swap=swap,
                    trace=PipelineTrace(label=label))
    _pass_compile_clauses(pir, clauses, decomps_list, eliminate_barriers,
                          verify)
    _pass_elide_redistribution(pir, elide)
    _pass_fuse_clauses(pir, fuse and eliminate_barriers)
    _pass_pipeline_time_loop(pir)
    if key is not None:
        pir.cache_key = key
        pir.trace.cache_key = key
        program_cache.store(key, pir)
    return pir


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _run_step(st: ProgramStep, machine: SharedMachine, backend: str,
              strict: bool, processes, timeout) -> None:
    if st.nd:
        from ..codegen.ndplan import run_shared_nd

        if strict and backend in ("fused", "native", "mp", "mpi"):
            from ..machine.fused import check_strict

            check_strict(st.ir, True)
        run_shared_nd(st.plan(), machine.env, machine, backend=backend,
                      processes=processes, timeout=timeout)
    else:
        from ..codegen.shared_tmpl import run_shared

        run_shared(st.plan(), machine.env, machine, backend=backend,
                   strict=strict, processes=processes, timeout=timeout)


def _run_group_scalar(steps: List[ProgramStep],
                      machine: SharedMachine) -> None:
    """The legacy fused-group walk: node-major, each node committing its
    own writes per clause as it goes — legal exactly because the barrier
    proof showed no datum crosses a processor across (or within) the
    fused phases."""
    for p in range(machine.pmax):
        for st in steps:
            clause, plan = st.clause, st.plan()
            buf = []
            for i in plan.modify_indices(p):
                machine.stats[p].iterations += 1
                idx = (i,)
                if clause.guard is not None and not clause.guard.eval(
                        idx, machine.env):
                    continue
                ai = clause.lhs.array_index(idx)[0]
                buf.append((clause.lhs.name, ai,
                            clause.rhs.eval(idx, machine.env)))
            for name, ai, v in buf:
                machine.env[name][ai] = v
                machine.stats[p].local_updates += 1
    for p in range(machine.pmax):
        machine.stats[p].barriers += 1


def _run_group(pir: ProgramIR, group: List[int], machine: SharedMachine,
               backend: str, strict: bool) -> None:
    steps = [pir.steps[k] for k in group]
    irs = [st.ir for st in steps]
    if backend != "scalar" and all(
            ir.kernels is not None and ir.kernels.shared is not None
            for ir in irs):
        from ..machine.fused import check_strict, run_group_fused

        if strict:
            for ir in irs:
                check_strict(ir, True)
        if backend == "native":
            from ..machine.native import run_group_native
            from .native import NativeBuildError, ensure_native

            try:
                for ir in irs:
                    ensure_native(ir.kernels, ir)
                    t = machine.env[ir.kernels.write_name]
                    if not t.flags.c_contiguous or t.dtype != np.float64:
                        raise NativeBuildError(
                            f"write target {ir.kernels.write_name!r} has "
                            "no contiguous float64 flat view")
                run_group_native(irs, machine)
                return
            except NativeBuildError as err:
                pir.trace.note("backend='native' clause group fell back "
                               f"to the fused walk: {err}")
        run_group_fused(irs, machine)
        return
    if backend != "scalar":
        pir.trace.note(
            "fused clause group fell back to the scalar walk "
            "(a clause in the group has no shared kernels)")
    _run_group_scalar(steps, machine)


def run_program(
    pir: ProgramIR,
    env: Dict[str, np.ndarray],
    *,
    backend: str = "scalar",
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    machine: Optional[SharedMachine] = None,
) -> Tuple[SharedMachine, int]:
    """Execute a compiled program on the shared-memory machine; returns
    ``(machine, barriers)`` — the barrier count covers all iterations.

    The full backend registry applies, exactly as for single clauses:
    ``overlap`` has no shared-memory meaning and runs the vector backend
    (trace note); ``mp`` executes the whole program on the worker pool —
    one shared-memory session across every clause and iteration when the
    program is pipelined — and falls back to per-clause driving (with a
    trace note) when a clause has no mp form; ``mpi`` executes the whole
    program SPMD under ``mpiexec`` — one MPI world across every clause
    and iteration, rank-local buffer swaps, a single final-state
    exchange — degrading first to per-clause driving and ultimately to
    fused when mpi4py is unavailable.
    """
    from ..backends import validate_backend

    validate_backend(backend, context="run_program")
    if machine is None:
        machine = SharedMachine(pir.pmax, env)
    if backend == "overlap":
        pir.trace.note("backend='overlap' on shared memory: no messages "
                       "to overlap; running the vector backend")
        backend = "vector"
    if backend == "mpi":
        from ..backends import backend_availability

        av = backend_availability("mpi")
        if av.available:
            from ..mpi.exec import MpiUnavailableError, run_program_mpi
            from ..runtime import MpLoweringError

            try:
                return run_program_mpi(pir, machine, strict=strict,
                                       processes=processes,
                                       timeout=timeout)
            except (MpLoweringError, MpiUnavailableError) as err:
                pir.trace.note(
                    f"backend='mpi' whole-program execution unavailable "
                    f"({err}); driving clauses individually")
        else:
            pir.trace.note(
                f"backend='mpi' fell back to the fused path: {av.reason}")
            backend = "fused"
    if backend == "mp":
        from ..runtime import MpLoweringError, run_program_mp

        try:
            return run_program_mp(pir, machine, strict=strict,
                                  processes=processes, timeout=timeout)
        except MpLoweringError as err:
            pir.trace.note(
                f"backend='mp' whole-program pipelining unavailable "
                f"({err}); driving clauses individually")
    barriers = 0
    genv = machine.env
    for _step in range(pir.repeat):
        for group in pir.groups:
            if len(group) == 1:
                st = pir.steps[group[0]]
                if st.clause.ordering is Ordering.SEQ:
                    _run_step(st, machine, "scalar", False, None, None)
                    continue
                _run_step(st, machine, backend, strict, processes, timeout)
                barriers += 1
            else:
                _run_group(pir, group, machine, backend, strict)
                barriers += 1
        for a, b in pir.swap:
            genv[a], genv[b] = genv[b], genv[a]
    return machine, barriers


def evaluate_program_reference(
    pir: ProgramIR, env: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Sequential reference semantics of a program IR: clauses in order,
    ``repeat`` iterations, swap after every iteration."""
    from ..core.evaluator import evaluate_clause

    out = {k: np.asarray(v, dtype=np.float64).copy()
           for k, v in env.items()}
    for _ in range(pir.repeat):
        for st in pir.steps:
            evaluate_clause(st.clause, out)
        for a, b in pir.swap:
            out[a], out[b] = out[b], out[a]
    return out
