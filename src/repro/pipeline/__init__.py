"""The unified pass-based compilation pipeline.

Both the canonical 1-D clause path (``repro.codegen.plan``) and the
d-dimensional grid paths (``repro.codegen.ndplan`` / ``nddist``) route
through :func:`compile_plan`: one Plan IR, one ordered pass list, one
trace.  The legacy ``compile_clause*`` entry points survive as thin
shims that validate their historical contracts and project the IR back
onto the plan dataclasses the machine templates consume.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.clause import Clause
from .cache import (
    CompileFlight,
    PlanCache,
    clear_plan_cache,
    compile_flight,
    enable_plan_cache,
    plan_cache,
    plan_cache_info,
    plan_key,
)
from .ir import AccessIR, AxisAccess, InteriorSplit, NodeSplit, PlanIR, access_spec
from .kernels import (
    FusedKernels,
    KernelCache,
    clear_kernel_cache,
    kernel_cache,
    kernel_cache_info,
)
from .manager import PassManager
from .native import (
    NativeBuildError,
    NativeKernels,
    NativeSupport,
    ensure_native,
    native_cache_info,
    native_support,
    render_native_source,
    reset_native_stats,
    reset_native_support,
)
from .passes import (
    EliminateBarriers,
    InsertHalo,
    LicenseDoacross,
    LowerKernels,
    OptimizeMembership,
    Pass,
    RecognizeReduction,
    SplitInterior,
    SubstituteViews,
    VerifyPlan,
    default_passes,
)
from .trace import PassRecord, PipelineTrace

__all__ = [
    "AccessIR",
    "AxisAccess",
    "NodeSplit",
    "InteriorSplit",
    "PlanIR",
    "PassManager",
    "PassRecord",
    "PipelineTrace",
    "Pass",
    "SubstituteViews",
    "OptimizeMembership",
    "SplitInterior",
    "InsertHalo",
    "EliminateBarriers",
    "RecognizeReduction",
    "LicenseDoacross",
    "VerifyPlan",
    "LowerKernels",
    "default_passes",
    "access_spec",
    "compile_plan",
    "CompileFlight",
    "compile_flight",
    "PlanCache",
    "plan_cache",
    "plan_key",
    "enable_plan_cache",
    "plan_cache_info",
    "clear_plan_cache",
    "FusedKernels",
    "KernelCache",
    "kernel_cache",
    "kernel_cache_info",
    "clear_kernel_cache",
    "NativeBuildError",
    "NativeKernels",
    "NativeSupport",
    "native_support",
    "reset_native_support",
    "native_cache_info",
    "reset_native_stats",
    "ensure_native",
    "render_native_source",
    "ProgramIR",
    "ProgramStep",
    "ProgramCache",
    "compile_program",
    "run_program",
    "evaluate_program_reference",
    "program_key",
    "program_cache",
    "program_cache_info",
    "clear_program_cache",
]


def compile_plan(
    clause: Clause,
    decomps: Dict[str, object],
    *,
    successor: Optional[Clause] = None,
    require_read_decomps: bool = True,
    passes: Optional[Sequence[Pass]] = None,
    verify: bool = False,
) -> PlanIR:
    """Compile *clause* through the pass pipeline and return the Plan IR.

    *successor* enables the `eliminate-barriers` pass to analyse the
    following clause; *require_read_decomps* is relaxed by the nd
    shared-memory path, where reads address global memory directly.
    *verify* appends the ``verify-plan`` static-analysis pass: the
    returned IR carries a ``DiagnosticReport`` on ``ir.diagnostics``.

    Compilations through the default pass list are memoized in the
    process-global :data:`~repro.pipeline.cache.plan_cache` on a
    structural key; a hit returns a clone whose trace carries
    ``cache_hit=True``.  Custom *passes* bypass the cache.  Verification
    shares the same key: a verified entry serves unverified lookups (the
    verdict rides along), and a hit on an unverified entry is verified
    on demand, with the report attached back to the cached plan.

    Concurrent misses on one key are *single-flight*: one thread leads
    the compile, every other blocks on
    :data:`~repro.pipeline.cache.compile_flight` and re-reads the cache
    when the leader finishes — N threads hammering one structural key
    run the pass pipeline exactly once.  A leader that raises releases
    without storing (no poison entries); its waiters retry, one of them
    becoming the new leader.
    """
    key = None
    if passes is None:
        key = plan_cache.key_for(
            clause, decomps, successor=successor,
            require_read_decomps=require_read_decomps,
        )
    if key is None:
        return _compile_fresh(clause, decomps, successor,
                              require_read_decomps, passes, verify)
    hit = _cached_hit(key, clause, decomps, successor, verify)
    if hit is not None:
        return hit
    while True:
        ev = compile_flight.acquire(key)
        if ev is None:
            break  # this thread leads the compile for the key
        finished = ev.wait(timeout=_FLIGHT_WAIT)
        hit = _cached_hit(key, clause, decomps, successor, verify)
        if hit is not None:
            return hit
        if not finished:
            # the leader is stuck (or glacially slow): compile
            # independently rather than block forever — store simply
            # overwrites whatever the leader eventually produces
            ir = _compile_fresh(clause, decomps, successor,
                                require_read_decomps, None, verify)
            ir.trace.cache_key = key
            plan_cache.store(key, ir)
            return ir
        # the leader failed (or its entry was already evicted): loop and
        # contend for leadership ourselves
    try:
        ir = _compile_fresh(clause, decomps, successor,
                            require_read_decomps, None, verify)
        ir.trace.cache_key = key
        plan_cache.store(key, ir)
        return ir
    finally:
        compile_flight.release(key)


#: how long a single-flight waiter trusts its leader before compiling
#: independently (seconds) — a safety valve, not a tuning knob
_FLIGHT_WAIT = 60.0


def _cached_hit(key, clause, decomps, successor, verify):
    hit = plan_cache.lookup(key, clause, decomps, successor)
    if hit is None:
        return None
    if verify and hit.diagnostics is None:
        PassManager([VerifyPlan()]).run(hit)
        plan_cache.attach_diagnostics(key, hit.diagnostics)
    return hit


def _compile_fresh(clause, decomps, successor, require_read_decomps,
                   passes, verify) -> PlanIR:
    ir = PlanIR(
        clause=clause,
        decomps=dict(decomps),
        successor=successor,
        require_read_decomps=require_read_decomps,
    )
    run_passes = passes
    if passes is None and verify:
        run_passes = default_passes(verify=True)
    PassManager(run_passes).run(ir)
    return ir


# imported last: the program layer compiles its clauses via compile_plan
from .program import (  # noqa: E402
    ProgramCache,
    ProgramIR,
    ProgramStep,
    clear_program_cache,
    compile_program,
    evaluate_program_reference,
    program_cache,
    program_cache_info,
    program_key,
    run_program,
)
