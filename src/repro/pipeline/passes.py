"""The named rewrite passes.

The §2.6-2.7 derivation is a sequence of rewrites; this module makes each
one an explicit, introspectable pass over :class:`~repro.pipeline.ir.PlanIR`:

``substitute-views``      decomposition substitution + contraction (Eq. 2):
                          every array reference becomes a placed access
                          ``[proc(f(i)), local(f(i))]`` with per-axis
                          decomposition/function pairs.
``optimize-membership``   Table I rule selection per axis (§3): each axis
                          gets its closed-form membership enumerator.
``insert-halo``           flag OverlappedBlock arrays whose local buffers
                          carry halo slots (the §2.7 fetch turned into a
                          pre-copied overlap region).
``eliminate-barriers``    §2.9 post-phase barrier removal: the barrier
                          after this clause is dropped when no processor's
                          reads in the successor overlap another's writes.
``recognize-reduction``   the §2.6 remark on associative ``•`` clauses:
                          detect accumulator recurrences that run as
                          local-partials + combine.
``license-doacross``      structural legality of the paper's "more
                          complicated orderings": a ``•`` clause whose only
                          loop-carried reads are constant-distance
                          recurrences may run as a paced DOACROSS.
``verify-plan``           (optional, ``compile_plan(..., verify=True)``)
                          the :mod:`repro.analysis` static verifier:
                          races, communication completeness, bounds and
                          decomposition lint over the Table I segments.

Passes only *record* facts on the IR; projections to the legacy plan
dataclasses and the machine templates consume them.  Passes import
codegen helpers lazily so the pipeline stays importable from anywhere in
the package without cycles.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.clause import Ordering
from ..core.ifunc import AffineF
from ..decomp.multidim import GridDecomposition
from ..decomp.overlap import OverlappedBlock
from ..sets.enumerators import Segment, intersect_segments
from ..sets.table1 import optimize_access
from .ir import AccessIR, AxisAccess, InteriorSplit, NodeSplit, PlanIR, \
    access_spec

__all__ = [
    "Pass",
    "SubstituteViews",
    "OptimizeMembership",
    "SplitInterior",
    "InsertHalo",
    "EliminateBarriers",
    "RecognizeReduction",
    "LicenseDoacross",
    "VerifyPlan",
    "LowerKernels",
    "default_passes",
]

PassResult = Tuple[int, List[str]]


class Pass:
    """A named rewrite over the Plan IR."""

    name: str = "?"
    paper: str = ""

    def run(self, ir: PlanIR) -> PassResult:  # pragma: no cover - interface
        raise NotImplementedError


def _make_access(ref, pos, dec, clause) -> AccessIR:
    try:
        dims, funcs = access_spec(ref.imap)
    except ValueError:
        dims, funcs = (), ()
    axes: List[AxisAccess] = []
    if dec is not None and funcs:
        if isinstance(dec, GridDecomposition):
            if dec.ndim == len(funcs):
                axes = [
                    AxisAccess(d, f, dims[k])
                    for k, (d, f) in enumerate(zip(dec.dims, funcs))
                ]
        elif len(funcs) == 1:
            axes = [AxisAccess(dec, funcs[0], dims[0])]
    return AccessIR(ref=ref, name=ref.name, dec=dec, dims=dims, funcs=funcs,
                    axes=axes, pos=pos)


class SubstituteViews(Pass):
    """Decomposition substitution + contraction (Eq. 2): rewrite every
    array reference into its placed ``(proc, local)`` form."""

    name = "substitute-views"
    paper = "§2.6 Eq. 2"

    def run(self, ir: PlanIR) -> PassResult:
        clause = ir.clause
        bounds = clause.domain.bounds
        ir.loop_bounds = list(zip(bounds.lower, bounds.upper))

        notes: List[str] = []
        rewrites = 0

        ir.write = _make_access(clause.lhs, None, ir.decomps[clause.lhs.name],
                                clause)
        ir.pmax = ir.write.dec.pmax
        rewrites += 1
        notes.append(f"{clause.lhs.name} -> (proc_{clause.lhs.name}, "
                     f"local_{clause.lhs.name}) under {ir.write.dec!r}")

        for pos, ref in enumerate(clause.reads()):
            dec = ir.decomps.get(ref.name)
            if dec is None and ir.require_read_decomps:
                raise KeyError(ref.name)
            acc = _make_access(ref, pos, dec, clause)
            ir.reads.append(acc)
            if dec is not None:
                rewrites += 1
                notes.append(f"read{pos}:{ref.name} -> (proc, local) "
                             f"under {dec!r}")
            else:
                notes.append(f"read{pos}:{ref.name} left in global view "
                             "(shared-memory addressing)")

        # The executable derivation chain produces the same records: reuse
        # its pretty forms as the notes for the 1-D // case.
        if ir.ndim == 1 and clause.ordering is Ordering.PAR:
            try:
                from ..core.rewrite import derivation_forms

                for rule, form in derivation_forms(clause, ir.decomps):
                    notes.append(f"[{rule}] {form}")
            except (KeyError, ValueError):
                pass
        return rewrites, notes


class OptimizeMembership(Pass):
    """Table I rule selection (§3): pick the closed-form enumerator for
    every placed axis.  A rewrite is counted whenever the selection beats
    the naive full-range scan."""

    name = "optimize-membership"
    paper = "§3 / Table I"

    def run(self, ir: PlanIR) -> PassResult:
        notes: List[str] = []
        rewrites = 0
        for acc in ir.accesses():
            for k, ax in enumerate(acc.axes):
                lo, hi = ir.loop_bounds[ax.loop_dim]
                ax.access = optimize_access(ax.dec, ax.func, lo, hi)
                suffix = f":dim{k}" if len(acc.axes) > 1 else ""
                notes.append(
                    f"{acc.label}:{acc.name}{suffix} -> {ax.access.rule}")
                if not ax.access.rule.startswith("naive"):
                    rewrites += 1
        return rewrites, notes


class SplitInterior(Pass):
    """Partition each node's ``Modify_p`` into *interior* (every
    non-replicated read already locally resident — computable while
    messages are in flight) and a *boundary* remainder (needs remote
    values), by pure segment arithmetic on the Table I enumerations.

    Because every access factorizes per loop dimension, so does the
    interior:

        ``interior_d(p) = write_d(p) ∩ (∩ over reads covering d of
        resident_d(p))``

    and ``interior(p) = ∏_d interior_d(p)`` while ``boundary(p) =
    Modify_p − interior(p)`` (which does not factorize; the overlap
    executor recovers it with per-dimension membership masks).  The pass
    only records segments on the IR — the `overlap` backend consumes
    them; scalar/vector backends ignore them."""

    name = "split-interior"
    paper = "§5 overlap (future work)"

    def run(self, ir: PlanIR) -> PassResult:
        ir.interior_split = None
        skip = self._inapplicable(ir)
        if skip is not None:
            return 0, [f"skipped: {skip}"]

        dim_axis = {ax.loop_dim: (k, ax)
                    for k, ax in enumerate(ir.write.axes)}
        split = InteriorSplit()
        for p in range(ir.pmax):
            wcoord = ir.write.grid_coord(p)
            modify = []
            interior = []
            for d in range(ir.ndim):
                k, ax = dim_axis[d]
                segs = ax.access.enumerate(wcoord[k]).segments
                modify.append(list(segs))
                interior.append(list(segs))
            for acc in ir.reads:
                if acc.replicated:
                    continue
                coord = acc.grid_coord(p)
                for k, ax in enumerate(acc.axes):
                    d = ax.loop_dim
                    res = self._resident_segments(ir, ax, coord[k], d)
                    interior[d] = intersect_segments(interior[d], res)
            split.per_node[p] = NodeSplit(modify=modify, interior=interior)

        ir.interior_split = split
        m, i, b = split.totals()
        notes = []
        for d in range(ir.ndim):
            mod_d = sum(sum(s.count() for s in split.per_node[p].modify[d])
                        for p in range(ir.pmax))
            int_d = sum(sum(s.count() for s in split.per_node[p].interior[d])
                        for p in range(ir.pmax))
            notes.append(f"axis dim{d}: interior {int_d}/{mod_d} index "
                         f"points, boundary {mod_d - int_d} "
                         f"(summed over {ir.pmax} nodes)")
        notes.append(f"total elements: interior={i} boundary={b} "
                     f"of modify={m}")
        return (1 if i > 0 else 0), notes

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _inapplicable(ir: PlanIR) -> "str | None":
        """Reason the split cannot be computed, or None if it can."""
        if ir.clause.ordering is not Ordering.PAR:
            return "sequential (•) clause: phase order is fixed"
        w = ir.write
        if w is None or not w.placed:
            return "write access is unplaced"
        if w.replicated:
            return "replicated write: every node computes all of Modify"
        if not w.axes or any(ax.access is None for ax in w.axes):
            return "write has no optimized per-axis enumerators"
        covered = sorted(ax.loop_dim for ax in w.axes)
        if covered != list(range(ir.ndim)):
            return "write does not cover every loop dimension"
        for acc in ir.reads:
            if acc.replicated:
                continue
            if not acc.placed:
                return f"{acc.label}:{acc.name} is unplaced"
            if not acc.axes or any(ax.access is None for ax in acc.axes):
                return (f"{acc.label}:{acc.name} has no optimized "
                        "per-axis enumerators")
        return None

    @staticmethod
    def _resident_segments(ir: PlanIR, ax: AxisAccess, pcoord: int,
                           d: int) -> list:
        """Loop indices along dim *d* whose read element is locally
        resident on axis-coordinate *pcoord*.

        Ownership (the Table I enumeration) is always resident; an
        :class:`OverlappedBlock` axis with an affine access additionally
        resolves the whole halo-extended range locally, inverted in
        closed form.  Anything short of that falls back to ownership —
        a conservative (smaller) interior, never an incorrect one."""
        dec = ax.dec
        f = ax.func
        if isinstance(dec, OverlappedBlock) and isinstance(f, AffineF) \
                and f.a != 0:
            lo_r, hi_r = dec.resident_range(pcoord)
            if lo_r > hi_r:
                return []
            # i with lo_r <= a.i + c <= hi_r  (every such i qualifies)
            if f.a > 0:
                ilo = -(-(lo_r - f.c) // f.a)   # ceil
                ihi = (hi_r - f.c) // f.a       # floor
            else:
                ilo = -(-(hi_r - f.c) // f.a)
                ihi = (lo_r - f.c) // f.a
            blo, bhi = ir.loop_bounds[d]
            ilo, ihi = max(ilo, blo), min(ihi, bhi)
            return [Segment(ilo, ihi, 1)] if ilo <= ihi else []
        return ax.access.enumerate(pcoord).segments


class InsertHalo(Pass):
    """Flag OverlappedBlock arrays: their local buffers carry halo slots,
    so reads within the overlap become local accesses (§2.7's fetch
    replaced by a pre-copied region)."""

    name = "insert-halo"
    paper = "§2.7"

    def run(self, ir: PlanIR) -> PassResult:
        ir.halo_arrays = [
            name for name in ir.clause.array_names()
            if isinstance(ir.decomps.get(name), OverlappedBlock)
        ]
        notes = [
            f"{name}: halo width {ir.decomps[name].halo} "
            "(reads inside the overlap resolve locally)"
            for name in ir.halo_arrays
        ]
        return len(ir.halo_arrays), notes


class EliminateBarriers(Pass):
    """§2.9: drop the post-phase barrier when no processor's reads in the
    successor clause can observe another processor's writes from this
    one."""

    name = "eliminate-barriers"
    paper = "§2.9"

    def run(self, ir: PlanIR) -> PassResult:
        if ir.successor is None:
            return 0, ["no successor clause: barrier kept"]
        if ir.ndim != 1 or ir.successor.domain.dim != 1:
            return 0, ["barrier analysis implemented for 1-D clauses: kept"]
        from ..codegen.barriers import barrier_removable

        try:
            removable = barrier_removable(ir.clause, ir.successor, ir.decomps)
        except (KeyError, ValueError) as exc:
            return 0, [f"analysis unavailable ({exc}); barrier kept"]
        ir.barrier_needed = not removable
        if removable:
            return 1, [f"barrier before {ir.successor.name!r} eliminated: "
                       "no cross-processor write/read overlap"]
        return 0, [f"barrier before {ir.successor.name!r} kept"]


class RecognizeReduction(Pass):
    """Detect associative accumulator recurrences in ``•`` clauses (the
    §2.6 remark): these run as local partials + logarithmic combine
    instead of a serialized chain."""

    name = "recognize-reduction"
    paper = "§2.6 remark"

    def run(self, ir: PlanIR) -> PassResult:
        if ir.clause.ordering is not Ordering.SEQ or ir.ndim != 1:
            return 0, []
        from ..codegen.idioms import recognize_reduction

        ir.reduction = recognize_reduction(ir.clause)
        if ir.reduction is None:
            return 0, ["no accumulator recurrence recognized"]
        red = ir.reduction
        return 1, [f"reduction over {red.op!r} into "
                   f"{ir.clause.lhs.name}[{red.slot}]"]


class LicenseDoacross(Pass):
    """Structural legality of a paced DOACROSS schedule for ``•`` clauses
    whose loop-carried reads are constant-distance recurrences."""

    name = "license-doacross"
    paper = "§2.6 orderings"

    def run(self, ir: PlanIR) -> PassResult:
        ir.doacross_distances = {}
        clause = ir.clause
        if clause.ordering is not Ordering.SEQ or ir.ndim != 1:
            return 0, []
        if ir.reduction is not None:
            return 0, ["clause runs as a reduction: doacross not needed"]
        if ir.write is None or ir.write.replicated:
            return 0, ["replicated write: doacross not licensed"]
        wf = ir.write.funcs[0] if ir.write.funcs else None
        if not (isinstance(wf, AffineF) and wf.a == 1 and wf.c == 0):
            return 0, ["write access is not the identity: not licensed"]
        if clause.guard is not None and any(
            r.name == clause.lhs.name for r in clause.guard.refs()
        ):
            return 0, ["guard reads the written array: not licensed"]
        distances = {}
        for pos, ref in enumerate(clause.reads()):
            if ref.name != clause.lhs.name:
                continue
            try:
                g = ref.scalar_func()
            except ValueError:
                return 0, [f"read{pos} of {ref.name!r} is not 1-D separable"]
            if isinstance(g, AffineF) and g.a == 1 and g.c <= -1:
                distances[pos] = -g.c
            else:
                return 0, [f"read{pos} of the written array is not a "
                           "constant-distance recurrence: not licensed"]
        if not distances:
            return 0, ["no loop-carried recurrence read: nothing to pace"]
        ir.doacross_distances = distances
        return 1, [f"doacross licensed with distances {distances}"]


class VerifyPlan(Pass):
    """The optional static verifier (:mod:`repro.analysis`): Bernstein
    races, communication completeness, bounds, and decomposition lint —
    all closed-form over the Table I segments, §3's decidability claim
    turned into diagnostics.  Findings land on ``ir.diagnostics`` and on
    the trace (``compile --explain`` shows them; ``repro check`` prints
    them)."""

    name = "verify-plan"
    paper = "§3 (membership sets decidable at compile time)"

    def run(self, ir: PlanIR) -> PassResult:
        from ..analysis import verify_ir

        report = verify_ir(ir)
        if not report.diagnostics:
            return 0, ["clause verified: no findings"]
        return (len(report.diagnostics),
                [d.headline() for d in report.diagnostics])


class LowerKernels(Pass):
    """Lower the plan to compile-once fused node kernels (§4's generated
    programs, specialized all the way): the clause body becomes one
    generated NumPy expression, membership/placement arithmetic is
    evaluated now into flat gather/scatter index arrays, and the result
    is attached to ``ir.kernels`` for ``backend="fused"``.  Plans with
    no fused form (sequential clauses, irregular layouts) keep the
    vector path; the reason lands on the trace."""

    name = "lower-kernels"
    paper = "§4 (compile-time specialization of generated programs)"

    def run(self, ir: PlanIR) -> PassResult:
        from .kernels import attach_kernels

        notes = attach_kernels(ir)
        return (1 if ir.kernels is not None else 0), notes


def default_passes(verify: bool = False) -> List[Pass]:
    """The standard pipeline, in order.  *verify* inserts the optional
    ``verify-plan`` static-analysis pass before kernel lowering."""
    passes: List[Pass] = [
        SubstituteViews(),
        OptimizeMembership(),
        SplitInterior(),
        InsertHalo(),
        EliminateBarriers(),
        RecognizeReduction(),
        LicenseDoacross(),
    ]
    if verify:
        passes.append(VerifyPlan())
    passes.append(LowerKernels())
    return passes
