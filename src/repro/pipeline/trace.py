"""Pass records and pipeline traces.

Every compilation routed through :class:`~repro.pipeline.manager.PassManager`
leaves behind a :class:`PipelineTrace`: one :class:`PassRecord` per pass,
carrying the pass name, the paper section it implements, wall time,
how many rewrites it applied, free-form notes, and before/after IR
snapshots.  The CLI dumps it (``repro compile --explain``) and the
§2.6-2.7 derivation chain (:meth:`repro.core.rewrite.SPMDDerivation.as_trace`)
reuses the same record format, so one introspection surface covers both
the executable derivation and the production compile path.

This module is a leaf: it imports nothing from the rest of the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PassRecord", "PipelineTrace"]


@dataclass
class PassRecord:
    """One pass application: what ran, what it did, what it cost."""

    name: str
    paper: str = ""
    wall_ms: float = 0.0
    rewrites: int = 0
    notes: List[str] = field(default_factory=list)
    before: str = ""
    after: str = ""

    def headline(self) -> str:
        head = f"{self.name:20s} rewrites={self.rewrites:<3d} {self.wall_ms:7.3f} ms"
        return f"{head}  {self.paper}" if self.paper else head


@dataclass
class PipelineTrace:
    """Ordered pass records for one compilation (or derivation)."""

    label: str = ""
    records: List[PassRecord] = field(default_factory=list)
    #: trace-level remarks outside any single pass (backend fallbacks, ..)
    notes: List[str] = field(default_factory=list)
    #: True when this compilation was served from the plan cache
    cache_hit: bool = False
    #: the structural plan-cache key, when one could be built
    cache_key: Optional[tuple] = None
    #: the static verifier's DiagnosticReport, when `verify-plan` ran
    diagnostics: Optional[object] = None

    def add(self, record: PassRecord) -> PassRecord:
        self.records.append(record)
        return record

    def note(self, message: str) -> None:
        """Attach a trace-level remark (shown by ``compile --explain``)."""
        self.notes.append(message)

    def names(self) -> List[str]:
        return [r.name for r in self.records]

    def record(self, name: str) -> Optional[PassRecord]:
        for r in self.records:
            if r.name == name:
                return r
        return None

    def total_rewrites(self) -> int:
        return sum(r.rewrites for r in self.records)

    def total_ms(self) -> float:
        return sum(r.wall_ms for r in self.records)

    def by_name(self) -> Dict[str, PassRecord]:
        return {r.name: r for r in self.records}

    def pretty(self, verbose: bool = False) -> str:
        """Human-readable ordered pass list with per-pass rewrite counts."""
        head = f"pipeline {self.label or '<anonymous>'}: " \
               f"{len(self.records)} passes, " \
               f"{self.total_rewrites()} rewrites, {self.total_ms():.3f} ms"
        if self.cache_hit:
            head += "  [plan-cache hit]"
        lines = [head]
        for k, r in enumerate(self.records, 1):
            lines.append(f"  {k}. {r.headline()}")
            for note in r.notes:
                lines.append(f"       {note}")
            if verbose and r.after and r.after != r.before:
                for ln in r.after.splitlines():
                    lines.append(f"       | {ln}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.diagnostics is not None:
            for ln in self.diagnostics.pretty().splitlines():
                lines.append(f"  {ln}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest (used by benchmarks and reports)."""
        return {
            "label": self.label,
            "passes": [
                {
                    "name": r.name,
                    "paper": r.paper,
                    "wall_ms": r.wall_ms,
                    "rewrites": r.rewrites,
                    "notes": list(r.notes),
                }
                for r in self.records
            ],
            "total_rewrites": self.total_rewrites(),
            "total_ms": self.total_ms(),
            "notes": list(self.notes),
            "cache_hit": self.cache_hit,
            "diagnostics": (self.diagnostics.summary()
                            if self.diagnostics is not None else None),
        }
