"""Native-tier node kernels: numba-njit compilation of fused kernels.

The fused backend (:mod:`repro.pipeline.kernels`) already moved every
piece of membership/placement arithmetic to compile time — what remains
per node per step is one Python-dispatched NumPy expression (gather,
fused ufunc line, scatter).  On large grids and 1000-step pipelined
loops the *interpreter*, not the hardware, is the bottleneck.  This
module renders the same kernel — guard + RHS + scatter over flat arrays
and precomputed index vectors — as a **scalar loop** an ``@njit``
compiler turns into native code with no Python objects in the hot path:

.. code-block:: python

    def _kernel(_i, _r, _lanes, _scatter, _out):
        _m = 0
        for _t in range(_scatter.shape[0]):
            _l = _lanes[_t]
            if (_r[2, _l] > 0.5):
                _out[_scatter[_t]] = ((_r[0, _l] * 0.5) + _r[1, _l])
                _m += 1
        return _m

One fixed signature — ``_i`` the stacked membership index vectors
(``int64[ndim, n]``), ``_r`` the stacked read value rows
(``float64[nreads, n]``), ``_lanes`` the lane subset to run (interior or
boundary), ``_scatter`` the flat store keys, ``_out`` the raveled write
buffer — means exactly **one JIT compile per clause source**, shared by
the shared/distributed flavors, every lane set, and every step of a
pipelined loop.  The dispatcher is built lazily by :func:`ensure_native`
and stored on the plan's :class:`~repro.pipeline.kernels.FusedKernels`
entry, so it lives and dies with the kernel cache: a warm structural-key
recompile skips codegen *and* JIT, and ``clear_plan_cache()`` (or an LRU
eviction) disposes the dispatcher alongside the fused tier.

Availability is decided by one cached probe, :func:`native_support` —
the registry, CLI, executors, mp workers and tests all route through it
instead of scattering ``import numba`` try/excepts:

* numba importable -> ``mode="njit"`` (the real native tier);
* ``REPRO_NO_NATIVE=1`` -> unavailable (force the fused fallback, e.g.
  in CI jobs asserting the degradation path);
* ``REPRO_NATIVE_INTERP=1`` -> ``mode="interp"``: the generated scalar
  loop runs as plain exec-compiled Python.  Orders of magnitude slower —
  a *testing* knob that lets the full native stack (codegen, executors,
  dispatch, cache lifecycle) be exercised bit-for-bit on machines
  without numba.

Where support is absent or a kernel has no native form (sequential
clauses, replicated writes, irregular layouts — all already fused
fallbacks — plus unrenderable expressions and non-contiguous buffers),
every ``backend="native"`` entry point degrades to the fused tier with a
trace note; it is never an error.

Float semantics are preserved bit-for-bit: the scalar loop evaluates the
same IEEE-754 double expression tree in the same order as the vectorized
NumPy line (``min``/``max`` render to the NaN-propagating
``np.minimum``/``np.maximum``; ``and``/``or`` to their non-short-circuit
``!= 0`` forms), which is what lets ``TestAllBackendsAgree`` require
exact equality with every other backend.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..core.expr import BinOp, Const, LoopIndex, Ref, UnOp

__all__ = [
    "NativeSupport",
    "native_support",
    "reset_native_support",
    "NativeBuildError",
    "NativeKernels",
    "render_native_source",
    "ensure_native",
    "dispose_native",
    "native_cache_info",
    "reset_native_stats",
]

#: the one njit signature every generated kernel compiles under
NATIVE_SIGNATURE = ("int64(int64[:, ::1], float64[:, ::1], int64[::1], "
                    "int64[::1], float64[::1])")

#: minimum numba the ``native`` extra pins (older wheels miss typed-tuple
#: fixes the generated kernels rely on)
_MIN_NUMBA = (0, 59)


class NativeBuildError(ValueError):
    """The plan has no native-kernel specialization (reason in
    ``args[0]``); callers fall back to the fused tier with a trace
    note — never an error."""


# ---------------------------------------------------------------------------
# the support probe
# ---------------------------------------------------------------------------

class NativeSupport(NamedTuple):
    """Result of the cached numba probe."""

    available: bool
    mode: str           # "njit" | "interp" | "none"
    reason: str         # human-readable availability note
    version: Optional[str] = None


_support: Optional[NativeSupport] = None
_support_lock = threading.Lock()


def _probe() -> NativeSupport:
    if os.environ.get("REPRO_NO_NATIVE"):
        return NativeSupport(False, "none",
                             "disabled by REPRO_NO_NATIVE")
    if os.environ.get("REPRO_NATIVE_INTERP"):
        return NativeSupport(True, "interp",
                             "REPRO_NATIVE_INTERP: generated kernels run "
                             "as exec-compiled Python (testing mode)")
    try:
        import numba
    except ImportError as e:
        return NativeSupport(
            False, "none",
            f"numba unavailable ({e}); install the 'native' extra")
    version = getattr(numba, "__version__", "0")
    try:
        parts = tuple(int(x) for x in version.split(".")[:2])
    except ValueError:
        parts = _MIN_NUMBA
    if parts < _MIN_NUMBA:
        return NativeSupport(
            False, "none",
            f"numba {version} is older than the supported "
            f">={'.'.join(map(str, _MIN_NUMBA))}", version)
    return NativeSupport(True, "njit", f"numba {version}", version)


def native_support() -> NativeSupport:
    """The single cached probe for numba availability.

    Registry, CLI, executors, mp workers and tests all consult this —
    never ``import numba`` directly.  The result is cached for the
    process; :func:`reset_native_support` re-probes (tests flip the
    ``REPRO_NO_NATIVE`` / ``REPRO_NATIVE_INTERP`` knobs)."""
    global _support
    sup = _support
    if sup is None:
        with _support_lock:
            sup = _support
            if sup is None:
                sup = _support = _probe()
    return sup


def reset_native_support() -> None:
    """Drop the cached probe result (re-reads env on next call)."""
    global _support
    with _support_lock:
        _support = None


# ---------------------------------------------------------------------------
# scalar-loop codegen
# ---------------------------------------------------------------------------

def _render_scalar(expr, posmap: Dict[int, int]) -> str:
    """njit-safe scalar source: loop dim *d* at lane ``_t`` is
    ``_i[d, _t]``; read *k* at full-lane ``_l`` is ``_r[k, _l]``.

    NumPy elementwise semantics are preserved exactly: ``min``/``max``
    propagate NaN (``np.minimum``/``np.maximum``), ``and``/``or`` are
    the non-short-circuit logical forms."""
    from ..codegen.exprsrc import _BINOP_PY

    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, LoopIndex):
        return f"_i[{expr.dim}, _t]"
    if isinstance(expr, Ref):
        return f"_r[{posmap[id(expr)]}, _l]"
    if isinstance(expr, BinOp):
        left = _render_scalar(expr.left, posmap)
        right = _render_scalar(expr.right, posmap)
        if expr.op == "min":
            return f"_np.minimum({left}, {right})"
        if expr.op == "max":
            return f"_np.maximum({left}, {right})"
        if expr.op == "and":
            return f"(({left}) != 0 and ({right}) != 0)"
        if expr.op == "or":
            return f"(({left}) != 0 or ({right}) != 0)"
        return f"({left} {_BINOP_PY[expr.op]} {right})"
    if isinstance(expr, UnOp):
        inner = _render_scalar(expr.operand, posmap)
        if expr.op == "abs":
            return f"abs({inner})"
        if expr.op == "not":
            return f"(not ({inner} != 0))"
        return f"(-{inner})"
    raise NativeBuildError(
        f"no scalar source for expression node {type(expr).__name__}")


def render_native_source(clause) -> str:
    """Generate the njit-compilable scalar-loop kernel source for one
    clause (guard folded into the loop; returns the store count)."""
    posmap = {id(ref): pos for pos, ref in enumerate(clause.reads())}
    rhs = _render_scalar(clause.rhs, posmap)
    lines = [
        f"# native (njit) kernel for clause {clause.name!r}",
        f"#   {clause!r}",
        "# _i[d, t]: membership index of loop dim d at lane t",
        "# _r[k, l]: read k's value at full lane l (= _lanes[t])",
        "# _scatter[t]: flat store key into the raveled write buffer",
        "# returns the number of stores (guard-filtered)",
        "",
        "def _kernel(_i, _r, _lanes, _scatter, _out):",
        "    _m = 0",
        "    for _t in range(_scatter.shape[0]):",
        "        _l = _lanes[_t]",
    ]
    store = [f"_out[_scatter[_t]] = {rhs}",
             "_m += 1"]
    if clause.guard is not None:
        guard = _render_scalar(clause.guard, posmap)
        lines.append(f"        if {guard}:")
        lines += [f"            {ln}" for ln in store]
    else:
        lines += [f"        {ln}" for ln in store]
    lines += ["    return _m"]
    return "\n".join(lines) + "\n"


def compile_native_entry(source: str) -> Tuple[Callable, float]:
    """Compile generated kernel source to a callable entry point.

    Returns ``(entry, jit_seconds)``.  Under ``mode="njit"`` the entry is
    an eagerly compiled dispatcher (one signature, JIT paid here, never
    in the hot loop); under ``mode="interp"`` it is the exec-compiled
    Python function itself (``jit_seconds`` 0)."""
    sup = native_support()
    if not sup.available:
        raise NativeBuildError(sup.reason)
    ns: Dict[str, object] = {"_np": np}
    exec(compile(source, "<native-kernel>", "exec"), ns)  # noqa: S102
    fn = ns["_kernel"]
    if sup.mode == "interp":
        return fn, 0.0
    import numba

    t0 = time.perf_counter()
    entry = numba.njit(NATIVE_SIGNATURE, cache=False)(fn)
    return entry, time.perf_counter() - t0


# ---------------------------------------------------------------------------
# per-node native data (stacked index arrays + flat scatters)
# ---------------------------------------------------------------------------

def _stack_i64(vecs: tuple) -> np.ndarray:
    """Stack per-dim index vectors into the kernel's ``int64[ndim, n]``."""
    if not vecs:
        return np.zeros((1, 0), dtype=np.int64)
    out = np.ascontiguousarray(np.stack(
        [np.asarray(v, dtype=np.int64) for v in vecs]))
    return out


def flat_key(key_vecs: tuple, shape: Tuple[int, ...]) -> np.ndarray:
    """Flatten a tuple of per-dim global index vectors against *shape*."""
    if len(key_vecs) == 1:
        return np.ascontiguousarray(key_vecs[0], dtype=np.int64)
    if key_vecs[0].size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.ravel_multi_index(
        tuple(np.asarray(v, dtype=np.int64) for v in key_vecs), shape
    ).astype(np.int64, copy=False)


@dataclass
class NativeSharedNode:
    """One node's shared-flavor native data: stacked indices, all-lane
    set, and a flat global scatter resolved against the target shape on
    first run (cached — shapes are stable for a given decomposition)."""

    n: int
    idx2: np.ndarray                # int64[ndim, n]
    lanes: np.ndarray               # arange(n)
    write_key_vecs: tuple           # per-dim global store vectors
    _scatter: Optional[np.ndarray] = field(default=None, repr=False)
    _scatter_shape: Optional[tuple] = field(default=None, repr=False)

    def scatter_for(self, shape: Tuple[int, ...]) -> np.ndarray:
        if self._scatter is None or self._scatter_shape != shape:
            self._scatter = flat_key(self.write_key_vecs, shape)
            self._scatter_shape = shape
        return self._scatter


@dataclass
class NativeDistNode:
    """One node's distributed-flavor native data (send/gather plans stay
    on the fused :class:`DistNodeKernel`; only the stacked per-lane-set
    index arrays are new — the flat local scatters already exist)."""

    idx2_interior: np.ndarray
    idx2_boundary: np.ndarray


@dataclass
class NativeKernels:
    """The native tier of one plan: one compiled entry point plus the
    per-node stacked/flattened data both executors consume."""

    source: str
    entry: Callable
    mode: str                       # "njit" | "interp"
    jit_s: float
    nreads: int
    write_name: str
    shared: Optional[List[NativeSharedNode]] = None
    dist: Optional[List[NativeDistNode]] = None

    def describe(self) -> str:
        parts = [f"mode={self.mode}", f"jit={self.jit_s * 1e3:.1f} ms"]
        for label, nodes in (("shared", self.shared),
                             ("distributed", self.dist)):
            if nodes is not None:
                parts.append(f"{label}: {len(nodes)} node kernels")
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# build + lifecycle (rides the kernel cache)
# ---------------------------------------------------------------------------

_STATS = {"builds": 0, "hits": 0, "failures": 0, "disposed": 0,
          "jit_s": 0.0}
_stats_lock = threading.Lock()


def _build_native(kernels, ir) -> NativeKernels:
    sup = native_support()
    if not sup.available:
        raise NativeBuildError(sup.reason)
    source = render_native_source(ir.clause)
    entry, jit_s = compile_native_entry(source)
    nat = NativeKernels(source=source, entry=entry, mode=sup.mode,
                        jit_s=jit_s, nreads=kernels.nreads,
                        write_name=kernels.write_name)
    if kernels.shared is not None:
        nat.shared = [
            NativeSharedNode(
                n=nk.n,
                idx2=_stack_i64(nk.idx),
                lanes=np.arange(nk.n, dtype=np.int64),
                write_key_vecs=tuple(
                    np.asarray(a, dtype=np.int64) for a in nk.write_key_vecs),
            )
            for nk in kernels.shared
        ]
    if kernels.dist is not None:
        nat.dist = [
            NativeDistNode(
                idx2_interior=_stack_i64(nk.idx_interior),
                idx2_boundary=_stack_i64(nk.idx_boundary),
            )
            for nk in kernels.dist
        ]
    return nat


def ensure_native(kernels, ir) -> NativeKernels:
    """The native tier of *kernels*, built on first demand and stored on
    the cached :class:`FusedKernels` entry — the kernel cache's
    structural key therefore covers both tiers, and a warm recompile
    skips codegen *and* JIT.  Raises :class:`NativeBuildError` (with the
    cached reason on repeat calls) when no native form exists."""
    nat = getattr(kernels, "native", None)
    if nat is not None:
        with _stats_lock:
            _STATS["hits"] += 1
        return nat
    note = getattr(kernels, "native_note", None)
    if note is not None:
        raise NativeBuildError(note)
    try:
        nat = _build_native(kernels, ir)
    except NativeBuildError as e:
        kernels.native_note = str(e)
        with _stats_lock:
            _STATS["failures"] += 1
        raise
    except Exception as e:  # JIT surprises: cache the reason, never fatal
        kernels.native_note = f"{type(e).__name__}: {e}"
        with _stats_lock:
            _STATS["failures"] += 1
        raise NativeBuildError(kernels.native_note) from e
    kernels.native = nat
    with _stats_lock:
        _STATS["builds"] += 1
        _STATS["jit_s"] += nat.jit_s
    return nat


def dispose_native(kernels) -> None:
    """Drop the native tier of one evicted/cleared kernel-cache entry —
    the njit dispatcher (and its compiled machine code) must not outlive
    the structural-key entry that owns it."""
    if getattr(kernels, "native", None) is not None:
        kernels.native = None
        with _stats_lock:
            _STATS["disposed"] += 1
    if getattr(kernels, "native_note", None) is not None:
        kernels.native_note = None


def native_cache_info() -> Dict[str, object]:
    """Native-tier counters for ``compile --cache-stats``: builds (each
    paying one JIT), warm hits, cached-failure count, disposals, and
    total JIT seconds — plus the probe verdict."""
    sup = native_support()
    with _stats_lock:
        out = dict(_STATS)
    out["available"] = sup.available
    out["mode"] = sup.mode
    out["reason"] = sup.reason
    return out


def reset_native_stats() -> None:
    with _stats_lock:
        for k in _STATS:
            _STATS[k] = 0.0 if k == "jit_s" else 0
