"""Compile-once plan cache.

Every compilation routed through :func:`repro.pipeline.compile_plan`
(which backs ``compile_clause``, ``compile_clause_nd`` and
``compile_clause_nd_dist``) is memoized on a *structural* key: the
clause's expression tree, loop bounds and ordering, plus the
``cache_key()`` of every referenced decomposition.  Recompiling the same
clause against structurally identical decompositions returns the cached
Plan IR — the trace of the returned plan carries ``cache_hit=True`` and
the key itself (``repro compile --explain`` shows ``[plan-cache hit]``).

Structural means *never a false hit*:

* ``ConstantF`` / ``AffineF`` access functions and separable/projected
  index maps key by their defining integers; two independently built
  ``AffineF(1, -1)`` instances hit the same entry.
* Opaque parts (``MonotoneF`` closures, ``IndirectF`` tables, general
  maps, non-trivial domain predicates) key by *object identity* — the
  cache entry keeps the object alive, so the id can never be reused
  while the entry exists.  Distinct-but-equivalent opaque objects miss,
  which is merely a lost optimization.
* A decomposition whose ``cache_key()`` returns ``None`` opts the whole
  compilation out of the cache.

Cached entries are shared: on a hit the IR is shallow-cloned with a
fresh :class:`~repro.pipeline.trace.PipelineTrace` (same pass records,
empty note list) so per-run backend notes never accumulate on the
cached plan.  The cache is process-global, thread-safe, LRU-bounded,
and can be disabled (CLI ``--no-plan-cache``).
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.clause import Clause
from ..core.expr import BinOp, Const, Expr, LoopIndex, Ref, UnOp
from ..core.ifunc import AffineF, ConstantF
from ..core.indexset import TRUE
from ..core.view import ProjectedMap, SeparableMap
from .trace import PipelineTrace

__all__ = [
    "CompileFlight",
    "PlanCache",
    "compile_flight",
    "plan_key",
    "plan_cache",
    "enable_plan_cache",
    "plan_cache_info",
    "clear_plan_cache",
]

_DEFAULT_MAXSIZE = 256


def _env_maxsize(default: int) -> int:
    """LRU capacity, overridable with ``REPRO_CACHE_SIZE`` (applies to
    the plan, kernel, Table I and program caches alike; read at cache
    construction time)."""
    raw = os.environ.get("REPRO_CACHE_SIZE")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


# -- structural keys ---------------------------------------------------------

def _func_key(f) -> tuple:
    """Structural key of a scalar access function (identity for opaque)."""
    if isinstance(f, ConstantF):
        return ("const", f.c)
    if isinstance(f, AffineF):  # includes IdentityF
        return ("affine", f.a, f.c)
    return ("opaque", f)


def _imap_key(imap) -> tuple:
    if isinstance(imap, SeparableMap):
        return ("sep",) + tuple(_func_key(f) for f in imap.funcs)
    if isinstance(imap, ProjectedMap):
        return ("proj", imap.dims) + tuple(_func_key(f) for f in imap.funcs)
    return ("opaque", imap)


def _expr_key(e: Expr) -> tuple:
    if isinstance(e, Ref):
        return ("ref", e.name, _imap_key(e.imap))
    if isinstance(e, Const):
        return ("c", e.value)
    if isinstance(e, LoopIndex):
        return ("i", e.dim)
    if isinstance(e, BinOp):
        return ("bin", e.op, _expr_key(e.left), _expr_key(e.right))
    if isinstance(e, UnOp):
        return ("un", e.op, _expr_key(e.operand))
    return ("opaque", e)


def _clause_key(clause: Clause) -> tuple:
    dom = clause.domain
    pred = ("TRUE",) if dom.predicate is TRUE else ("opaque", dom.predicate)
    return (
        clause.ordering.value,
        dom.bounds.lower,
        dom.bounds.upper,
        pred,
        _expr_key(clause.lhs),
        _expr_key(clause.rhs),
        None if clause.guard is None else _expr_key(clause.guard),
    )


def _decomps_key(clause: Clause, decomps: Dict[str, object]) -> Optional[tuple]:
    """Per-array decomposition keys for every array the clause touches.

    Returns ``None`` (uncacheable) when any placed decomposition opts
    out; an array with *no* decomposition (the nd-shared relaxed path)
    keys as ``None`` explicitly, which is still cacheable."""
    items = []
    for name in clause.array_names():
        dec = decomps.get(name)
        if dec is None:
            items.append((name, None))
            continue
        key_of = getattr(dec, "cache_key", None)
        ck = key_of() if callable(key_of) else None
        if ck is None:
            return None
        items.append((name, ck))
    return tuple(items)


def plan_key(
    clause: Clause,
    decomps: Dict[str, object],
    *,
    successor: Optional[Clause] = None,
    require_read_decomps: bool = True,
) -> Optional[tuple]:
    """Structural cache key for one ``compile_plan`` invocation, or
    ``None`` when the inputs opt out of caching.  The returned tuple is
    hashable unless an opaque part is unhashable, which callers detect
    by probing ``hash(key)``."""
    dk = _decomps_key(clause, decomps)
    if dk is None:
        return None
    if successor is None:
        sk = None
    else:
        sdk = _decomps_key(successor, decomps)
        if sdk is None:
            return None
        sk = (_clause_key(successor), sdk)
    return ("plan", _clause_key(clause), dk, sk, bool(require_read_decomps))


# -- the cache ---------------------------------------------------------------

class PlanCache:
    """Thread-safe LRU cache of compiled :class:`~repro.pipeline.ir.PlanIR`."""

    def __init__(self, maxsize: Optional[int] = None):
        self.maxsize = (_env_maxsize(_DEFAULT_MAXSIZE)
                        if maxsize is None else maxsize)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()

    def key_for(self, clause, decomps, *, successor=None,
                require_read_decomps=True) -> Optional[tuple]:
        """`plan_key` guarded by an enabled check and a hashability probe."""
        if not self.enabled:
            return None
        key = plan_key(clause, decomps, successor=successor,
                       require_read_decomps=require_read_decomps)
        if key is None:
            return None
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def lookup(self, key: tuple, clause=None, decomps=None, successor=None):
        """Return a cloned hit (``trace.cache_hit=True``) or ``None``.

        When *clause* is given the clone is re-anchored onto the caller's
        clause and ``Ref`` objects (see :func:`_clone_hit`)."""
        with self._lock:
            ir = self._entries.get(key)
            if ir is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return _clone_hit(ir, key, clause, decomps, successor)

    def store(self, key: tuple, ir) -> None:
        with self._lock:
            self._entries[key] = ir
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def attach_diagnostics(self, key: tuple, report) -> None:
        """Attach a verification report to the cached entry for *key*
        (a hit was verified on demand; future hits reuse the verdict)."""
        if report is None:
            return
        with self._lock:
            ir = self._entries.get(key)
            if ir is not None and ir.diagnostics is None:
                ir.diagnostics = report

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "enabled": self.enabled,
            }


def _clone_hit(ir, key: tuple, clause=None, decomps=None, successor=None):
    """Shallow-clone a cached IR with a fresh hit-marked trace.

    Pass records are shared (they are not mutated after compilation);
    the note list is fresh so backend fallback notes recorded while
    *running* one projection never leak into later cache hits.

    When *clause* is the caller's (structurally identical) clause, the
    clone is *re-anchored* onto it: ``ir.clause`` and each access's
    ``ref`` become the caller's objects.  Downstream executors key
    pre-fetched values by ``id(ref)`` while evaluating the clause's
    expression tree, so the plan's refs must be the very objects inside
    the clause the caller holds — the structural key guarantees the
    position-by-position swap is sound."""
    trace = PipelineTrace(
        label=ir.trace.label,
        records=list(ir.trace.records),
        cache_hit=True,
        cache_key=key,
        diagnostics=ir.diagnostics,
    )
    if clause is None:
        return dataclasses.replace(ir, trace=trace)
    clone = dataclasses.replace(
        ir,
        clause=clause,
        decomps=dict(decomps) if decomps is not None else dict(ir.decomps),
        successor=successor,
        trace=trace,
    )
    clone.write = dataclasses.replace(ir.write, ref=clause.lhs)
    refs = clause.reads()
    clone.reads = [dataclasses.replace(acc, ref=refs[pos])
                   for pos, acc in enumerate(ir.reads)]
    if ir.reduction is not None:
        # the recognized reduction carries a subtree of the clause —
        # recompute it against the caller's tree (cheap, same outcome)
        from ..codegen.idioms import recognize_reduction

        clone.reduction = recognize_reduction(clause)
    return clone


# -- per-key single-flight ---------------------------------------------------

class CompileFlight:
    """Per-structural-key single-flight guard for the compile path.

    A lock around ``get``/``put`` makes the cache *safe* but not
    *single-compile*: sixteen threads missing on the same key would all
    run the pass pipeline and store sixteen times.  ``compile_plan``
    therefore elects one *leader* per in-flight key; every other thread
    blocks on the leader's event and re-reads the cache once it fires.
    A leader that fails releases without storing, so a failed compile is
    never cached as poison — the next waiter simply becomes the new
    leader and retries.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: Dict[tuple, threading.Event] = {}
        self.leaders = 0
        self.waits = 0

    def acquire(self, key: tuple) -> Optional[threading.Event]:
        """Elect: ``None`` means the caller leads (and MUST ``release``);
        otherwise the returned event fires when the leader is done."""
        with self._lock:
            ev = self._events.get(key)
            if ev is None:
                self._events[key] = threading.Event()
                self.leaders += 1
                return None
            self.waits += 1
            return ev

    def release(self, key: tuple) -> None:
        with self._lock:
            ev = self._events.pop(key, None)
        if ev is not None:
            ev.set()

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {"leaders": self.leaders, "waits": self.waits,
                    "inflight": len(self._events)}


#: the process-global compile single-flight used by ``compile_plan``
compile_flight = CompileFlight()

#: the process-global cache used by ``compile_plan``
plan_cache = PlanCache()


def enable_plan_cache(on: bool = True) -> None:
    """Turn the global plan cache on/off (CLI ``--no-plan-cache``).

    The fused-kernel cache rides along: disabling the plan cache means
    "recompile everything", and kernels are part of the compile."""
    plan_cache.enabled = bool(on)
    from .kernels import kernel_cache

    kernel_cache.enabled = bool(on)


def plan_cache_info() -> Dict[str, object]:
    return plan_cache.info()


def clear_plan_cache() -> None:
    """Drop every cached plan *and* the fused kernels attached to them —
    a stale kernel must never run against a re-anchored plan.  If the
    multi-process runtime was ever started, its worker pools (which hold
    installed copies of those kernels) are shut down too."""
    plan_cache.clear()
    from .kernels import kernel_cache

    kernel_cache.clear()
    from .program import program_cache

    program_cache.clear()
    import sys

    runtime = sys.modules.get("repro.runtime")
    if runtime is not None:  # never import the runtime just to clear it
        runtime.shutdown_runtime()
