"""The unified Plan IR.

One intermediate representation covers the paper's canonical 1-D clause
*and* the d-dimensional grid lifting: a 1-D clause is simply the
degenerate one-axis grid.  Each array access is an :class:`AccessIR`
whose per-axis placement (:class:`AxisAccess`) pairs a 1-D decomposition
with the index function feeding it; the `optimize-membership` pass fills
in the per-axis Table I enumerator.

The IR is what the passes of :mod:`repro.pipeline.passes` transform.
The legacy plan dataclasses (``SPMDPlan``, ``NDPlan``, ``NDDistPlan``)
are now *projections* of this IR — ``to_spmd_plan`` and friends build
them for the existing machine templates, which keeps every downstream
consumer (templates, pysource, halo, doacross, benchmarks) working
unchanged while the compile path itself is unified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.clause import Clause
from ..core.expr import Ref
from ..core.view import ProjectedMap, SeparableMap
from ..decomp.multidim import GridDecomposition
from .trace import PipelineTrace

__all__ = ["AxisAccess", "AccessIR", "NodeSplit", "InteriorSplit", "PlanIR",
           "access_spec"]


def access_spec(imap) -> Tuple[Tuple[int, ...], tuple]:
    """``(loop dims, index functions)`` of a separable/projected access."""
    if isinstance(imap, SeparableMap):
        return tuple(range(imap.dim)), imap.funcs
    if isinstance(imap, ProjectedMap):
        return imap.dims, imap.funcs
    raise ValueError("pipeline needs separable/projected accesses")


@dataclass
class AxisAccess:
    """One array axis: its 1-D decomposition, the index function feeding
    it, which loop dimension that function reads, and (after the
    `optimize-membership` pass) the chosen Table I enumerator."""

    dec: object
    func: object
    loop_dim: int
    access: Optional[object] = None  # OptimizedAccess

    @property
    def rule(self) -> str:
        return self.access.rule if self.access is not None else "?"


@dataclass
class AccessIR:
    """One array access (the write or one read) in substituted form."""

    ref: Ref
    name: str
    dec: object  # Decomposition | GridDecomposition | None (unplaced)
    dims: Tuple[int, ...] = ()
    funcs: tuple = ()
    axes: List[AxisAccess] = field(default_factory=list)
    pos: Optional[int] = None  # read position; None for the write

    @property
    def placed(self) -> bool:
        return self.dec is not None

    @property
    def replicated(self) -> bool:
        return bool(getattr(self.dec, "is_replicated", False))

    @property
    def label(self) -> str:
        return "write" if self.pos is None else f"read{self.pos}"

    def grid_coord(self, p: int) -> Tuple[int, ...]:
        """Grid coordinates of linear processor *p* for this access."""
        if isinstance(self.dec, GridDecomposition):
            return self.dec.grid_coord(p)
        return (p,)

    def rules(self) -> List[str]:
        return [ax.rule for ax in self.axes]

    def describe(self) -> str:
        shape = ",".join(f.name for f in self.funcs) if self.funcs else "?"
        rules = ("[" + ", ".join(self.rules()) + "]") if self.axes else "[]"
        dec = repr(self.dec) if self.placed else "<unplaced>"
        return f"{self.label}:{self.name}[{shape}] under {dec} {rules}"


@dataclass
class NodeSplit:
    """One node's interior/boundary partition of ``Modify_p``.

    ``modify[d]`` / ``interior[d]`` are the sorted disjoint segment lists
    for loop dimension *d*; the node's interior is the cartesian product
    of the per-dimension interiors (the factorized form — see the
    `split-interior` pass), and the boundary is ``Modify_p`` minus that
    product (computed by the executor via per-dimension masks; it does
    not factorize)."""

    modify: List[list]    # per loop-dim List[Segment]
    interior: List[list]  # per loop-dim List[Segment]

    def _prod(self, per_dim: List[list]) -> int:
        total = 1
        for segs in per_dim:
            total *= sum(s.count() for s in segs)
        return total

    @property
    def modify_count(self) -> int:
        return self._prod(self.modify)

    @property
    def interior_count(self) -> int:
        return self._prod(self.interior)

    @property
    def boundary_count(self) -> int:
        return self.modify_count - self.interior_count


@dataclass
class InteriorSplit:
    """The `split-interior` pass product: per-node partitions."""

    per_node: Dict[int, NodeSplit] = field(default_factory=dict)

    def totals(self) -> Tuple[int, int, int]:
        """``(modify, interior, boundary)`` element totals over all nodes."""
        m = sum(ns.modify_count for ns in self.per_node.values())
        i = sum(ns.interior_count for ns in self.per_node.values())
        return m, i, m - i


@dataclass
class PlanIR:
    """The unified plan: clause + substituted accesses + pass-derived
    facts, accumulated by the pass pipeline."""

    clause: Clause
    decomps: Dict[str, object]
    successor: Optional[Clause] = None
    #: nd-shared compilation does not require read decompositions
    require_read_decomps: bool = True

    # filled by substitute-views -------------------------------------------
    loop_bounds: List[Tuple[int, int]] = field(default_factory=list)
    write: Optional[AccessIR] = None
    reads: List[AccessIR] = field(default_factory=list)
    pmax: int = 0

    # filled by later passes -----------------------------------------------
    halo_arrays: List[str] = field(default_factory=list)
    barrier_needed: bool = True
    reduction: Optional[object] = None
    doacross_distances: Dict[int, int] = field(default_factory=dict)
    interior_split: Optional[InteriorSplit] = None
    #: DiagnosticReport of the optional `verify-plan` pass (cached with
    #: the plan, so cache hits reuse the verdict)
    diagnostics: Optional[object] = None
    #: FusedKernels attached by the `lower-kernels` pass (compile-once
    #: node kernels for ``backend="fused"``; None when no fused form
    #: exists — the executors fall back to the vector path)
    kernels: Optional[object] = None

    trace: PipelineTrace = field(default_factory=PipelineTrace)

    # -- introspection -------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.clause.domain.dim

    def accesses(self) -> List[AccessIR]:
        out = [self.write] if self.write is not None else []
        return out + list(self.reads)

    def rules(self) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for acc in self.accesses():
            for k, ax in enumerate(acc.axes):
                key = f"{acc.label}:{acc.name}" if len(acc.axes) == 1 else \
                    f"{acc.label}:{acc.name}:dim{k}"
                out[key] = ax.rule
        return out

    def describe(self) -> str:
        lines = [repr(self.clause)]
        for acc in self.accesses():
            lines.append("  " + acc.describe())
        flags = []
        if self.halo_arrays:
            flags.append(f"halo={self.halo_arrays}")
        if self.reduction is not None:
            flags.append("reduction")
        if self.doacross_distances:
            flags.append(f"doacross={self.doacross_distances}")
        if self.interior_split is not None:
            m, i, b = self.interior_split.totals()
            flags.append(f"interior={i}/{m} boundary={b}")
        flags.append(f"barrier={'kept' if self.barrier_needed else 'eliminated'}")
        lines.append("  " + " ".join(flags))
        return "\n".join(lines)

    # -- projections to the legacy plan dataclasses --------------------------

    def to_spmd_plan(self):
        """Project to the canonical 1-D :class:`~repro.codegen.plan.SPMDPlan`."""
        from ..codegen.plan import CompiledRead, SPMDPlan

        imin, imax = self.loop_bounds[0]
        reads = [
            CompiledRead(acc.ref, acc.dec, acc.funcs[0], acc.pos,
                         acc.axes[0].access)
            for acc in self.reads
        ]
        plan = SPMDPlan(
            clause=self.clause,
            imin=imin,
            imax=imax,
            write_dec=self.write.dec,
            write_func=self.write.funcs[0],
            modify=self.write.axes[0].access,
            reads=reads,
            pmax=self.pmax,
        )
        plan.ir = self
        plan.trace = self.trace
        return plan

    def to_nd_plan(self):
        """Project to the shared-memory :class:`~repro.codegen.ndplan.NDPlan`."""
        from ..codegen.ndplan import NDPlan

        plan = NDPlan(
            clause=self.clause,
            write_dec=self.write.dec,
            out_dims=self.write.dims,
            dim_access=[ax.access for ax in self.write.axes],
            loop_bounds=list(self.loop_bounds),
            pmax=self.pmax,
        )
        plan.ir = self
        plan.trace = self.trace
        return plan

    def to_nd_dist_plan(self):
        """Project to the distributed :class:`~repro.codegen.nddist.NDDistPlan`."""
        from ..codegen.nddist import NDDistPlan, _NDAccess

        def nd_access(acc: AccessIR) -> _NDAccess:
            # legacy behaviour: replicated reads carry no per-dim enumerators
            per_dim = [] if (acc.replicated and acc.pos is not None) else [
                ax.access for ax in acc.axes
            ]
            return _NDAccess(acc.name, acc.dec, acc.dims, acc.funcs, per_dim)

        plan = NDDistPlan(
            clause=self.clause,
            write=nd_access(self.write),
            reads=[nd_access(acc) for acc in self.reads],
            loop_bounds=list(self.loop_bounds),
            pmax=self.pmax,
        )
        plan.ir = self
        plan.trace = self.trace
        return plan
