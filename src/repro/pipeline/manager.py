"""PassManager: run a pass list over a PlanIR, recording a trace.

Each pass application is timed (wall clock), its rewrite count and notes
captured, and before/after IR snapshots stored — the compiler's flight
recorder, dumped by ``repro compile --explain``.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence

from .ir import PlanIR
from .passes import Pass, default_passes
from .trace import PassRecord

__all__ = ["PassManager"]


class PassManager:
    """Runs named passes in order over one :class:`PlanIR`."""

    def __init__(self, passes: Optional[Sequence[Pass]] = None):
        self.passes: List[Pass] = (
            list(passes) if passes is not None else default_passes()
        )

    def run(self, ir: PlanIR) -> PlanIR:
        if not ir.trace.label:
            ir.trace.label = f"clause {ir.clause.name!r}"
        for ps in self.passes:
            before = ir.describe()
            t0 = perf_counter()
            rewrites, notes = ps.run(ir)
            wall_ms = (perf_counter() - t0) * 1e3
            ir.trace.add(PassRecord(
                name=ps.name,
                paper=ps.paper,
                wall_ms=wall_ms,
                rewrites=rewrites,
                notes=list(notes),
                before=before,
                after=ir.describe(),
            ))
        return ir
