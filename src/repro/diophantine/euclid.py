"""Extended Euclid's algorithm with step counting (paper Section 4).

The paper argues the per-processor run-time cost of computing
``gcd(a, pmax)`` and the constant ``C(a, pmax)`` is negligible, quoting
Knuth (Vol. 2): the number of division steps never exceeds
``4.8 log10(N) - 0.32`` for operands below ``N``, and averages
``1.9405 log10(n)``; and that with small ``a`` (``a <= 7``) the maximum is
5 steps, average ≈ 2.65.  We count steps so the E11 benchmark can verify
these claims on our implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["EuclidResult", "extended_euclid", "gcd_steps", "knuth_step_bound"]


@dataclass(frozen=True)
class EuclidResult:
    """``g = gcd(a, b) = x.a + y.b``, plus the division-step count."""

    g: int
    x: int
    y: int
    steps: int


def extended_euclid(a: int, b: int) -> EuclidResult:
    """Extended Euclid on non-negative ``a``, ``b`` (not both zero).

    Iterative (no recursion depth limits), counting one step per division,
    the measure Knuth's bounds are stated in.
    """
    if a < 0 or b < 0:
        raise ValueError("extended_euclid expects non-negative operands")
    if a == 0 and b == 0:
        raise ValueError("gcd(0, 0) undefined")
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    steps = 0
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
        steps += 1
    return EuclidResult(old_r, old_x, old_y, steps)


def gcd_steps(a: int, b: int) -> int:
    """Division-step count of Euclid on ``(a, b)``."""
    return extended_euclid(a, b).steps


def knuth_step_bound(n: int) -> float:
    """Knuth's worst-case step bound ``4.8 log10(N) - 0.32`` for operands
    ``0 <= a, b < N`` (paper Section 4)."""
    if n < 2:
        return 1.0
    return 4.8 * math.log10(n) - 0.32
