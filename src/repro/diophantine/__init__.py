"""Number-theoretic substrate for the Theorem 3 optimizations (paper §3-4)."""

from .euclid import EuclidResult, extended_euclid, gcd_steps, knuth_step_bound
from .linear import (
    CongruenceSolution,
    active_processors,
    bezout_constant,
    solve_scatter_congruence,
)

__all__ = [
    "EuclidResult",
    "extended_euclid",
    "gcd_steps",
    "knuth_step_bound",
    "CongruenceSolution",
    "solve_scatter_congruence",
    "bezout_constant",
    "active_processors",
]
