"""Linear diophantine solver for Theorem 3 (scatter + linear access).

Under scatter decomposition, processor ``p`` executes index ``i`` iff
``f(i) mod pmax = p`` with ``f(i) = a.i + c``, i.e. iff the linear
diophantine equation

    ``a.i - pmax.k = p - c``                                    (paper Eq. 4)

has a solution.  With ``g = gcd(a, pmax)`` a solution exists iff
``g | (p - c)``; the solutions in ``i`` form the arithmetic progression

    ``i = x_p + (pmax/g).t``,  ``t = 0, ±1, ±2, ...``           (paper Eq. 5)

where the particular solution is ``x_p = δ_p . C(a, pmax)`` with
``δ_p = (p - c)/g`` and ``C(a, pmax)`` the Bézout coefficient of ``a``
(solving ``a.i - pmax.k = g``), independent of ``p`` (paper Eq. 6).

Consequently the active processors are exactly ``p ≡ c (mod g)`` — every
``g``-th processor — and consecutive active processors differ by
``δ_p ± 1``, the Section 4 observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .euclid import extended_euclid

__all__ = ["CongruenceSolution", "solve_scatter_congruence", "bezout_constant", "active_processors"]


def bezout_constant(a: int, pmax: int) -> int:
    """``C(a, pmax)``: an ``i`` with ``a.i ≡ gcd(a, pmax) (mod pmax)``.

    Found once per (a, pmax) pair by extended Euclid; reused for every
    processor (paper Eq. 6).
    """
    if a == 0:
        raise ValueError("a must be non-zero")
    res = extended_euclid(abs(a), pmax)
    x = res.x if a > 0 else -res.x
    return x


@dataclass(frozen=True)
class CongruenceSolution:
    """Solution of ``a.i ≡ p - c (mod pmax)`` in closed form.

    ``x0`` is the smallest particular solution in ``[0, stride)``;
    all solutions are ``x0 + stride.t``.
    """

    a: int
    c: int
    pmax: int
    p: int
    g: int
    x0: int
    stride: int
    euclid_steps: int

    def solutions_in(self, imin: int, imax: int) -> List[int]:
        """All solutions within ``[imin, imax]``, increasing."""
        if imin > imax:
            return []
        # first t with x0 + stride*t >= imin
        t0 = -((self.x0 - imin) // self.stride)
        out = []
        i = self.x0 + self.stride * t0
        while i <= imax:
            if i >= imin:
                out.append(i)
            i += self.stride
        return out

    def t_range(self, imin: int, imax: int) -> tuple[int, int]:
        """The paper's ``(t_min, t_max)`` such that ``gen(t) = x0 + stride.t``
        covers exactly the solutions in ``[imin, imax]``."""
        # ceil((imin - x0)/stride) .. floor((imax - x0)/stride)
        q, r = divmod(imin - self.x0, self.stride)
        tmin = q + (1 if r else 0)
        tmax = (imax - self.x0) // self.stride
        return tmin, tmax

    def gen(self, t: int) -> int:
        return self.x0 + self.stride * t


def solve_scatter_congruence(
    a: int, c: int, pmax: int, p: int
) -> Optional[CongruenceSolution]:
    """Solve ``a.i + c ≡ p (mod pmax)`` for ``i``.

    Returns ``None`` when no solution exists — the paper's "that particular
    processor is not to execute any code".
    """
    if a == 0:
        raise ValueError("a must be non-zero (use Theorem 1 for constants)")
    if pmax < 1:
        raise ValueError("pmax must be >= 1")
    res = extended_euclid(abs(a), pmax)
    g = res.g
    rhs = p - c
    if rhs % g:
        return None
    stride = pmax // g
    # Bézout: abs(a).x + pmax.y = g  =>  a.(±x).(rhs/g) ≡ rhs (mod pmax)
    x = res.x if a > 0 else -res.x
    x0 = (x * (rhs // g)) % stride
    return CongruenceSolution(
        a=a, c=c, pmax=pmax, p=p, g=g, x0=x0, stride=stride,
        euclid_steps=res.steps,
    )


def active_processors(a: int, c: int, pmax: int) -> List[int]:
    """Processors that execute any index at all: ``p ≡ c (mod gcd(a, pmax))``
    (Section 4's ``p_j = p_i ± gcd(a, pmax)`` spacing)."""
    g = extended_euclid(abs(a), pmax).g
    start = c % g
    return list(range(start, pmax, g))
